"""KL-divergence (Poisson) multiplicative updates on count data."""

import numpy as np
import pytest

from repro.core import cstf
from repro.machine.analytic import TensorStats
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import planted_sparse_cp
from repro.updates.base import get_update
from repro.updates.mu_kl import KlMuUpdate, kl_divergence


@pytest.fixture(scope="module")
def counts():
    t, _ = planted_sparse_cp((18, 15, 12), rank=3, seed=6)
    return SparseTensor(t.indices, np.round(5 * t.values) + 1.0, t.shape)


class TestKlDivergence:
    def test_truth_has_lower_kl_than_random(self, counts, rng):
        res = cstf(counts, rank=3, update="mu_kl", max_iters=30, seed=0)
        fitted = kl_divergence(counts, res.kruskal.factors, res.kruskal.weights)
        random_f = [rng.random((d, 3)) + 0.1 for d in counts.shape]
        assert fitted < kl_divergence(counts, random_f)

    def test_scaling_model_up_raises_kl(self, counts):
        res = cstf(counts, rank=3, update="mu_kl", max_iters=20, seed=0)
        base = kl_divergence(counts, res.kruskal.factors, res.kruskal.weights)
        inflated = kl_divergence(
            counts, res.kruskal.factors, 10.0 * res.kruskal.weights
        )
        assert inflated > base


class TestUpdate:
    def test_registered(self):
        assert isinstance(get_update("mu_kl"), KlMuUpdate)
        assert get_update("mu_kl").needs_tensor is True

    def test_ms_interface_rejected(self):
        with pytest.raises(NotImplementedError):
            KlMuUpdate().update(Executor("a100"), 0, None, None, None, {})

    def test_kl_monotone_nonincreasing(self, counts, rng):
        """The Lee-Seung KL rule never increases the divergence."""
        factors = [rng.random((d, 3)) + 0.1 for d in counts.shape]
        update = KlMuUpdate(iters=1)
        ex = Executor("a100")
        kl_values = [kl_divergence(counts, factors)]
        for _ in range(8):
            for mode in range(counts.ndim):
                factors[mode] = update.update_with_tensor(
                    ex, mode, counts, factors, factors[mode], {}
                )
            kl_values.append(kl_divergence(counts, factors))
        diffs = np.diff(kl_values)
        assert (diffs <= 1e-8).all(), kl_values

    def test_nonneg_output(self, counts, rng):
        factors = [rng.random((d, 3)) + 0.1 for d in counts.shape]
        out = KlMuUpdate().update_with_tensor(
            Executor("a100"), 0, counts, factors, factors[0], {}
        )
        assert (out > 0).all()

    def test_symbolic_path(self, counts):
        stats = TensorStats.from_coo(counts)
        sym_factors = [SymArray((d, 3)) for d in counts.shape]
        out = KlMuUpdate().update_with_tensor(
            Executor("a100"), 0, stats, sym_factors, sym_factors[0], {}
        )
        assert is_symbolic(out)


class TestDriverIntegration:
    def test_fit_improves_on_counts(self, counts):
        res = cstf(counts, rank=3, update="mu_kl", max_iters=30, seed=0)
        assert res.fits[-1] > res.fits[0]
        # KL-MU optimizes the Poisson loss, not the Frobenius fit the trace
        # reports, so the bar is lower than for the Frobenius methods.
        assert res.fits[-1] > 0.75

    def test_analytic_run_charges_update(self, counts):
        res = cstf(TensorStats.from_coo(counts), rank=3, update="mu_kl", max_iters=2)
        assert res.timeline.seconds("UPDATE") > 0
        # The (M, S) phases are skipped: KL-MU reads the tensor directly.
        assert res.timeline.seconds("MTTKRP") == 0.0

    def test_cost_parity_concrete_vs_analytic(self, counts):
        concrete = cstf(counts, rank=3, update="mu_kl", max_iters=2, compute_fit=False)
        analytic = cstf(
            TensorStats.from_coo(counts), rank=3, update="mu_kl", max_iters=2
        )
        assert analytic.timeline.seconds("UPDATE") == pytest.approx(
            concrete.timeline.seconds("UPDATE"), rel=1e-12
        )
