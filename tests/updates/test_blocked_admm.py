"""Blocked AO-ADMM: same numerics as generic ADMM, CPU-friendly cost."""

import numpy as np
import pytest

from repro.kernels.gram import gram_chain
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray
from repro.updates.admm import AdmmUpdate
from repro.updates.base import get_update
from repro.updates.blocked_admm import BlockedAdmmUpdate


@pytest.fixture
def subproblem(small3, factors3):
    mode = 0
    m_mat = mttkrp_coo(small3, factors3, mode)
    s_mat = gram_chain(factors3, skip=mode)
    return mode, m_mat, s_mat, np.array(factors3[mode]), small3.shape


class TestNumerics:
    def test_identical_to_generic_admm(self, subproblem):
        mode, m_mat, s_mat, h, shape = subproblem
        generic = AdmmUpdate(inner_iters=10)
        blocked = BlockedAdmmUpdate(inner_iters=10, block_rows=4)
        sg = generic.init_state(shape, h.shape[1])
        sb = blocked.init_state(shape, h.shape[1])
        out_g = generic.update(Executor("cpu"), mode, m_mat, s_mat, h, sg)
        out_b = blocked.update(Executor("cpu"), mode, m_mat, s_mat, h, sb)
        assert np.allclose(out_g, out_b)

    def test_registered(self):
        assert isinstance(get_update("blocked_admm"), BlockedAdmmUpdate)

    def test_nonneg(self, subproblem):
        mode, m_mat, s_mat, h, shape = subproblem
        blocked = BlockedAdmmUpdate()
        out = blocked.update(
            Executor("cpu"), mode, m_mat, s_mat, h, blocked.init_state(shape, h.shape[1])
        )
        assert (out >= 0).all()


class TestCost:
    def _seconds(self, update, device, rows=500_000, rank=32):
        ex = Executor(device)
        update.update(
            ex, 0, SymArray((rows, rank)), SymArray((rank, rank)),
            SymArray((rows, rank)), {},
        )
        return ex.timeline.total_seconds()

    def test_blocking_helps_on_cpu(self):
        """The Smith et al. result: blocked ADMM beats generic ADMM on CPUs
        by keeping the inner loop cache-resident."""
        generic = self._seconds(AdmmUpdate(inner_iters=10), "cpu")
        blocked = self._seconds(BlockedAdmmUpdate(inner_iters=10), "cpu")
        assert blocked < 0.7 * generic

    def test_blocking_useless_on_gpu(self):
        """The paper's Section 4.2 claim: blockwise reformulation is not
        effective on GPUs — cuADMM's fusion must beat it there."""
        from repro.updates.admm import cuadmm

        blocked = self._seconds(BlockedAdmmUpdate(inner_iters=10), "h100")
        fused = self._seconds(cuadmm(inner_iters=10), "h100")
        assert fused < blocked

    def test_block_size_respects_cache(self):
        """Oversized blocks spill the cache and lose the advantage."""
        good = self._seconds(BlockedAdmmUpdate(inner_iters=10, block_rows=8192), "cpu")
        huge = self._seconds(
            BlockedAdmmUpdate(inner_iters=10, block_rows=50_000_000), "cpu",
            rows=5_000_000,
        )
        good_big = self._seconds(
            BlockedAdmmUpdate(inner_iters=10, block_rows=8192), "cpu", rows=5_000_000
        )
        assert good_big < huge

    def test_symbolic_returns_symarray(self):
        from repro.machine.symbolic import is_symbolic

        blocked = BlockedAdmmUpdate()
        out = blocked.update(
            Executor("cpu"), 0, SymArray((100, 8)), SymArray((8, 8)), SymArray((100, 8)), {}
        )
        assert is_symbolic(out)
