"""HALS, MU, ALS and APG updates: correctness, monotonicity, symbolic parity."""

import numpy as np
import pytest

from repro.kernels.gram import gram_chain
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic
from repro.updates.als import AlsUpdate
from repro.updates.apg import ApgUpdate
from repro.updates.base import UPDATE_REGISTRY, get_update
from repro.updates.hals import HalsUpdate
from repro.updates.mu import MuUpdate


@pytest.fixture
def subproblem(small3, factors3):
    mode = 1
    m_mat = mttkrp_coo(small3, factors3, mode)
    s_mat = gram_chain(factors3, skip=mode)
    return mode, m_mat, s_mat, np.array(factors3[mode]), small3.shape


def _loss(h, m_mat, s_mat, x_norm_sq):
    """The per-mode quadratic objective ½‖X₍ₙ₎ - H·KRPᵀ‖² up to a constant:
    ½tr(HSHᵀ) - tr(HᵀM) + ½‖X‖²."""
    return 0.5 * np.trace(h @ s_mat @ h.T) - np.trace(h.T @ m_mat) + 0.5 * x_norm_sq


def _run(update, subproblem):
    mode, m_mat, s_mat, h, shape = subproblem
    ex = Executor("a100")
    state = update.init_state(shape, h.shape[1])
    out = update.update(ex, mode, m_mat, s_mat, h, state)
    return out, ex


class TestMu:
    def test_nonneg_preserved(self, subproblem):
        out, _ = _run(MuUpdate(), subproblem)
        assert (out > 0).all()

    def test_loss_nonincreasing(self, subproblem, small3):
        """Lee-Seung guarantee: MU never increases the objective."""
        mode, m_mat, s_mat, h, _ = subproblem
        x2 = small3.norm() ** 2
        before = _loss(h, m_mat, s_mat, x2)
        out, _ = _run(MuUpdate(), subproblem)
        assert _loss(out, m_mat, s_mat, x2) <= before + 1e-9

    def test_multiple_iters_progress(self, subproblem, small3):
        mode, m_mat, s_mat, h, _ = subproblem
        x2 = small3.norm() ** 2
        one, _ = _run(MuUpdate(iters=1), subproblem)
        five, _ = _run(MuUpdate(iters=5), subproblem)
        assert _loss(five, m_mat, s_mat, x2) <= _loss(one, m_mat, s_mat, x2) + 1e-9

    def test_fixed_point_of_exact_solution(self, subproblem):
        """If H already solves HS=M (elementwise positive), MU leaves it be."""
        mode, m_mat, s_mat, h, shape = subproblem
        h_star = np.abs(np.linalg.solve(s_mat, m_mat.T).T) + 0.1
        m_star = h_star @ s_mat
        out = MuUpdate().update(Executor("a100"), mode, m_star, s_mat, h_star, {})
        assert np.allclose(out, h_star, rtol=1e-10)

    def test_symbolic_parity(self, subproblem):
        mode, m_mat, s_mat, h, _ = subproblem
        _, ex_c = _run(MuUpdate(), subproblem)
        ex_s = Executor("a100")
        MuUpdate().update(ex_s, mode, SymArray(m_mat.shape), SymArray(s_mat.shape), SymArray(h.shape), {})
        assert ex_s.timeline.total_seconds() == pytest.approx(ex_c.timeline.total_seconds())


class TestHals:
    def test_nonneg_preserved(self, subproblem):
        out, _ = _run(HalsUpdate(), subproblem)
        assert (out >= 0).all()

    def test_loss_nonincreasing(self, subproblem, small3):
        mode, m_mat, s_mat, h, _ = subproblem
        x2 = small3.norm() ** 2
        out, _ = _run(HalsUpdate(), subproblem)
        assert _loss(out, m_mat, s_mat, x2) <= _loss(h, m_mat, s_mat, x2) + 1e-9

    def test_more_sweeps_no_worse(self, subproblem, small3):
        mode, m_mat, s_mat, h, _ = subproblem
        x2 = small3.norm() ** 2
        one, _ = _run(HalsUpdate(sweeps=1), subproblem)
        four, _ = _run(HalsUpdate(sweeps=4), subproblem)
        assert _loss(four, m_mat, s_mat, x2) <= _loss(one, m_mat, s_mat, x2) + 1e-9

    def test_symbolic_parity(self, subproblem):
        mode, m_mat, s_mat, h, _ = subproblem
        _, ex_c = _run(HalsUpdate(sweeps=2), subproblem)
        ex_s = Executor("a100")
        HalsUpdate(sweeps=2).update(
            ex_s, mode, SymArray(m_mat.shape), SymArray(s_mat.shape), SymArray(h.shape), {}
        )
        assert ex_s.timeline.total_seconds() == pytest.approx(ex_c.timeline.total_seconds())

    def test_symbolic_returns_symarray(self, subproblem):
        mode, m_mat, s_mat, h, _ = subproblem
        out = HalsUpdate().update(
            Executor("a100"), mode, SymArray(m_mat.shape), SymArray(s_mat.shape), SymArray(h.shape), {}
        )
        assert is_symbolic(out)


class TestAls:
    def test_exact_least_squares(self, subproblem):
        mode, m_mat, s_mat, h, _ = subproblem
        out, _ = _run(AlsUpdate(), subproblem)
        assert np.allclose(out @ s_mat, m_mat, rtol=1e-6, atol=1e-8)

    def test_not_nonnegative(self):
        assert AlsUpdate().nonnegative is False

    def test_loss_at_minimum(self, subproblem, small3):
        """No constrained method can beat the unconstrained LS optimum."""
        mode, m_mat, s_mat, h, _ = subproblem
        x2 = small3.norm() ** 2
        ls, _ = _run(AlsUpdate(), subproblem)
        for factory in (MuUpdate, HalsUpdate):
            constrained, _ = _run(factory(), subproblem)
            assert _loss(ls, m_mat, s_mat, x2) <= _loss(constrained, m_mat, s_mat, x2) + 1e-9


class TestApg:
    def test_nonneg_preserved(self, subproblem):
        out, _ = _run(ApgUpdate(inner_iters=10), subproblem)
        assert (out >= 0).all()

    def test_loss_improves_over_start(self, subproblem, small3):
        mode, m_mat, s_mat, h, _ = subproblem
        x2 = small3.norm() ** 2
        out, _ = _run(ApgUpdate(inner_iters=20), subproblem)
        assert _loss(out, m_mat, s_mat, x2) < _loss(h, m_mat, s_mat, x2)

    def test_momentum_state_persists(self, subproblem):
        mode, m_mat, s_mat, h, shape = subproblem
        update = ApgUpdate(inner_iters=5)
        state = update.init_state(shape, h.shape[1])
        update.update(Executor("a100"), mode, m_mat, s_mat, h, state)
        assert state["t"][mode] > 1.0

    def test_symbolic_runs(self, subproblem):
        mode, m_mat, s_mat, h, _ = subproblem
        out = ApgUpdate(inner_iters=3).update(
            Executor("a100"), mode, SymArray(m_mat.shape), SymArray(s_mat.shape), SymArray(h.shape), {}
        )
        assert is_symbolic(out)


class TestRegistry:
    @pytest.mark.parametrize("name", ["admm", "cuadmm", "admm_of", "admm_pi", "hals", "mu", "als", "apg"])
    def test_all_registered(self, name):
        assert get_update(name) is not None

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown update"):
            get_update("sgd")

    def test_instance_passthrough(self):
        u = MuUpdate()
        assert get_update(u) is u

    def test_kwargs_forwarded(self):
        u = get_update("admm", inner_iters=3)
        assert u.inner_iters == 3

    def test_registry_has_core_methods(self):
        assert {"admm", "cuadmm", "hals", "mu"} <= set(UPDATE_REGISTRY)
