"""Tests for norm helpers."""

import numpy as np
import pytest

from repro.linalg.norms import fro_norm_sq, relative_residual


class TestFroNormSq:
    def test_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(6, 7))
        assert fro_norm_sq(x) == pytest.approx(np.linalg.norm(x) ** 2)

    def test_zero(self):
        assert fro_norm_sq(np.zeros((3, 3))) == 0.0

    def test_vector(self):
        assert fro_norm_sq(np.array([3.0, 4.0])) == pytest.approx(25.0)


class TestRelativeResidual:
    def test_basic_ratio(self):
        assert relative_residual(2.0, 4.0) == pytest.approx(0.5)

    def test_zero_reference_is_large_not_nan(self):
        out = relative_residual(1.0, 0.0)
        assert np.isfinite(out)
        assert out > 1e20

    def test_zero_delta(self):
        assert relative_residual(0.0, 5.0) == 0.0
