"""Proximity operators: correctness plus projection property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg.proximal import PROXIMAL_REGISTRY, get_proximal, project_simplex_rows

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=12),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestNonneg:
    def test_clips_negatives(self):
        op = get_proximal("nonneg")
        x = np.array([[-1.0, 2.0], [0.0, -0.5]])
        assert np.array_equal(op(x, 1.0), [[0.0, 2.0], [0.0, 0.0]])

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_projection_idempotent(self, x):
        op = get_proximal("nonneg")
        once = op(x, 1.0)
        assert np.array_equal(op(once, 1.0), once)

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_output_in_constraint_set(self, x):
        assert (get_proximal("nonneg")(x, 2.0) >= 0).all()


class TestL1:
    def test_soft_threshold(self):
        op = get_proximal("l1", alpha=1.0)
        x = np.array([[3.0, -3.0, 0.5]])
        out = op(x, 1.0)  # threshold alpha/rho = 1
        assert np.allclose(out, [[2.0, -2.0, 0.0]])

    def test_threshold_scales_with_rho(self):
        op = get_proximal("l1", alpha=1.0)
        x = np.array([[3.0]])
        assert op(x, 2.0)[0, 0] == pytest.approx(2.5)

    @given(finite_arrays, st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_shrinks_toward_zero(self, x, rho):
        out = get_proximal("l1", alpha=0.5)(x, rho)
        assert (np.abs(out) <= np.abs(x) + 1e-12).all()


class TestRidge:
    def test_scaling(self):
        op = get_proximal("ridge", alpha=1.0)
        x = np.array([[2.0]])
        assert op(x, 1.0)[0, 0] == pytest.approx(1.0)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_contraction(self, x):
        out = get_proximal("ridge", alpha=0.3)(x, 1.0)
        assert (np.abs(out) <= np.abs(x) + 1e-12).all()


class TestNonnegL1:
    def test_combined(self):
        op = get_proximal("nonneg_l1", alpha=1.0)
        x = np.array([[2.0, -2.0, 0.5]])
        assert np.allclose(op(x, 1.0), [[1.0, 0.0, 0.0]])


class TestBox:
    def test_projection(self):
        op = get_proximal("box", lo=0.0, hi=1.0)
        x = np.array([[-0.5, 0.5, 1.5]])
        assert np.allclose(op(x, 1.0), [[0.0, 0.5, 1.0]])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            get_proximal("box", lo=2.0, hi=1.0)


class TestSimplex:
    def test_already_on_simplex(self):
        x = np.array([[0.25, 0.75]])
        assert np.allclose(project_simplex_rows(x), x)

    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 5)) * 3
        out = project_simplex_rows(x)
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= -1e-12).all()

    def test_vector_input(self):
        out = project_simplex_rows(np.array([5.0, 0.0]))
        assert np.allclose(out, [1.0, 0.0])

    def test_matches_known_case(self):
        # Projection of (1, 1) onto the simplex is (0.5, 0.5).
        assert np.allclose(project_simplex_rows(np.array([[1.0, 1.0]])), [[0.5, 0.5]])

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, x):
        once = project_simplex_rows(x)
        assert np.allclose(project_simplex_rows(once), once, atol=1e-9)

    def test_simplex_not_elementwise(self):
        assert get_proximal("simplex").elementwise is False


class TestRegistry:
    def test_all_registered_constructible(self):
        for name in PROXIMAL_REGISTRY:
            op = get_proximal(name)
            out = op(np.array([[0.3, -0.3]]), 1.0)
            assert out.shape == (1, 2)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown constraint"):
            get_proximal("fancy")

    def test_instance_passthrough(self):
        op = get_proximal("nonneg")
        assert get_proximal(op) is op

    def test_nonpositive_rho_rejected(self):
        with pytest.raises(ValueError, match="rho"):
            get_proximal("nonneg")(np.zeros((1, 1)), 0.0)

    @given(
        finite_arrays,
        st.sampled_from(["nonneg", "l1", "ridge", "nonneg_l1", "box", "unconstrained"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_nonexpansive(self, x, name):
        """Proximity operators are nonexpansive: ‖prox(x)-prox(y)‖ ≤ ‖x-y‖."""
        op = get_proximal(name)
        y = x + 1.0
        lhs = np.linalg.norm(op(x, 1.0) - op(y, 1.0))
        rhs = np.linalg.norm(x - y)
        assert lhs <= rhs + 1e-9


class TestSmooth:
    def test_reduces_roughness(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(50, 3)).cumsum(axis=0) + rng.normal(size=(50, 3))
        out = get_proximal("smooth", alpha=20.0)(x, 1.0)
        roughness = lambda a: float(np.abs(np.diff(a, axis=0)).sum())  # noqa: E731
        assert roughness(out) < 0.5 * roughness(x)

    def test_preserves_constant_columns(self):
        """Constant columns have zero smoothness penalty — fixed points."""
        x = np.full((30, 2), 3.0)
        out = get_proximal("smooth", alpha=5.0)(x, 1.0)
        assert np.allclose(out, x)

    def test_alpha_zero_is_identity(self):
        x = np.random.default_rng(1).normal(size=(10, 2))
        out = get_proximal("smooth", alpha=0.0)(x, 1.0)
        assert np.allclose(out, x)

    def test_single_row_identity(self):
        x = np.array([[1.0, -2.0]])
        assert np.allclose(get_proximal("smooth", alpha=9.0)(x, 1.0), x)

    def test_solves_exact_optimality(self):
        """The output satisfies the prox optimality condition
        (I + λ DᵀD) out = x."""
        rng = np.random.default_rng(2)
        x = rng.normal(size=(12, 2))
        alpha, rho = 3.0, 2.0
        out = get_proximal("smooth", alpha=alpha)(x, rho)
        d = np.diff(np.eye(12), axis=0)
        lhs = (np.eye(12) + (alpha / rho) * d.T @ d) @ out
        assert np.allclose(lhs, x, atol=1e-10)

    def test_smooth_nonneg_clips(self):
        x = np.random.default_rng(3).normal(size=(20, 2)) - 1.0
        out = get_proximal("smooth_nonneg", alpha=1.0)(x, 1.0)
        assert (out >= 0).all()

    def test_not_elementwise(self):
        assert get_proximal("smooth").elementwise is False

    def test_through_admm_driver(self):
        """End to end: a smoothness-constrained factorization produces
        smoother temporal columns than the unconstrained one."""
        from repro.core import cstf
        from repro.tensor.synthetic import planted_sparse_cp
        from repro.updates.admm import AdmmUpdate

        tensor, _ = planted_sparse_cp((15, 12, 30), rank=2, seed=12)
        rough = cstf(tensor, rank=2, update=AdmmUpdate(constraint="nonneg"),
                     max_iters=15, seed=1)
        smooth = cstf(
            tensor,
            rank=2,
            update=AdmmUpdate(constraint="smooth_nonneg",
                              constraint_params={"alpha": 5.0}),
            max_iters=15,
            seed=1,
        )

        def roughness(model):
            f = model.factors[2]
            return float(np.abs(np.diff(f, axis=0)).sum())

        assert roughness(smooth.kruskal) < roughness(rough.kruskal)
