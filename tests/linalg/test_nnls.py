"""Block-principal-pivoting NNLS (the PLANC solver)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.nnls import nnls_bpp


def _spd(rank, seed):
    rng = np.random.default_rng(seed)
    a = rng.random((rank, rank))
    return a @ a.T + 0.1 * np.eye(rank)


def _kkt_satisfied(s, m, x, tol=1e-6):
    """x >= 0; gradient >= 0 where x == 0; gradient == 0 where x > 0."""
    grad = x @ s - m
    if (x < -tol).any():
        return False
    active = x <= tol
    if (grad[active] < -tol).any():
        return False
    return bool(np.abs(grad[~active]).max(initial=0.0) < 1e-5 * max(np.abs(m).max(), 1.0))


class TestCorrectness:
    def test_interior_solution_matches_unconstrained(self):
        """If the unconstrained LS solution is positive, BPP returns it."""
        rank = 4
        s = _spd(rank, 0)
        h_true = np.random.default_rng(1).random((20, rank)) + 0.5
        m = h_true @ s
        out = nnls_bpp(s, m)
        assert np.allclose(out, h_true, atol=1e-8)

    def test_kkt_conditions(self):
        s = _spd(5, 2)
        m = np.random.default_rng(3).normal(size=(50, 5))  # many negatives
        out = nnls_bpp(s, m)
        assert _kkt_satisfied(s, m, out)

    def test_matches_scipy_per_row(self):
        """Cross-check against scipy's reference NNLS on the equivalent
        design-matrix formulation (S = AᵀA, m = AᵀB rows)."""
        from scipy.optimize import nnls as scipy_nnls

        rng = np.random.default_rng(4)
        a = rng.random((12, 4))
        s = a.T @ a
        b = rng.normal(size=(6, 12))
        m = b @ a
        out = nnls_bpp(s, m)
        for i in range(6):
            ref, _ = scipy_nnls(a, b[i])
            assert np.allclose(out[i], ref, atol=1e-6), i

    def test_all_negative_rhs_gives_zero(self):
        s = _spd(3, 5)
        m = -np.abs(np.random.default_rng(6).random((10, 3))) - 0.1
        assert not nnls_bpp(s, m).any()

    def test_empty_rows(self):
        s = _spd(3, 7)
        out = nnls_bpp(s, np.zeros((0, 3)))
        assert out.shape == (0, 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            nnls_bpp(np.ones((3, 2)), np.ones((4, 3)))
        with pytest.raises(ValueError):
            nnls_bpp(np.eye(3), np.ones((4, 2)))

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=30, deadline=None)
    def test_kkt_property(self, seed):
        rng = np.random.default_rng(seed)
        rank = int(rng.integers(2, 6))
        s = _spd(rank, seed)
        m = rng.normal(size=(int(rng.integers(1, 30)), rank)) * 3
        out = nnls_bpp(s, m)
        assert _kkt_satisfied(s, m, out)

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_objective_no_worse_than_clipped_ls(self, seed):
        """BPP's exact solution beats the naive clip-the-LS heuristic."""
        rng = np.random.default_rng(seed)
        s = _spd(4, seed)
        m = rng.normal(size=(15, 4)) * 2

        def objective(x):
            return 0.5 * np.einsum("ir,rs,is->", x, s, x) - np.einsum("ir,ir->", x, m)

        exact = nnls_bpp(s, m)
        clipped = np.maximum(np.linalg.solve(s, m.T).T, 0.0)
        assert objective(exact) <= objective(clipped) + 1e-8
