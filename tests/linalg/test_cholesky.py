"""Tests for Cholesky factor/solve/explicit-inverse helpers."""

import numpy as np
import pytest

from repro.linalg.cholesky import cholesky_factor, cholesky_solve, spd_inverse


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    return a @ a.T + n * np.eye(n)


class TestCholesky:
    def test_factor_reconstructs(self):
        s = _spd(6)
        l_factor = cholesky_factor(s)
        assert np.allclose(l_factor @ l_factor.T, s)

    def test_factor_lower_triangular(self):
        l_factor = cholesky_factor(_spd(5))
        assert np.allclose(l_factor, np.tril(l_factor))

    def test_non_spd_rejected(self):
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_factor(-np.eye(3))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            cholesky_factor(np.ones((2, 3)))

    def test_solve_matches_direct(self):
        s = _spd(8, seed=1)
        rhs = np.random.default_rng(2).random((8, 5))
        x = cholesky_solve(cholesky_factor(s), rhs)
        assert np.allclose(s @ x, rhs)

    def test_solve_vector_rhs(self):
        s = _spd(4, seed=3)
        rhs = np.arange(4.0)
        x = cholesky_solve(cholesky_factor(s), rhs)
        assert np.allclose(s @ x, rhs)

    def test_spd_inverse_is_inverse(self):
        s = _spd(7, seed=4)
        inv = spd_inverse(cholesky_factor(s))
        assert np.allclose(s @ inv, np.eye(7), atol=1e-10)

    def test_spd_inverse_symmetric(self):
        inv = spd_inverse(cholesky_factor(_spd(9, seed=5)))
        assert np.allclose(inv, inv.T)

    def test_preinversion_equivalence(self):
        """The cuADMM identity: solving and multiplying by the explicit
        inverse give the same result (the PI optimization changes cost, not
        results)."""
        s = _spd(6, seed=6)
        l_factor = cholesky_factor(s)
        rhs = np.random.default_rng(7).random((6, 10))
        assert np.allclose(
            cholesky_solve(l_factor, rhs), spd_inverse(l_factor) @ rhs, atol=1e-10
        )

    def test_diagonal_loading_conditions_problem(self):
        """S + ρI is well-conditioned even when S is near-singular (the
        paper's Section 4.3.2 stability argument)."""
        h = np.random.default_rng(8).random((20, 4))
        h[:, 3] = h[:, 2]  # rank-deficient Gram
        s = h.T @ h
        rho = np.trace(s) / 4
        l_factor = cholesky_factor(s + rho * np.eye(4))
        inv = spd_inverse(l_factor)
        assert np.isfinite(inv).all()
