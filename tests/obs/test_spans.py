"""Spans, the ambient session, and the null (zero-overhead) path."""

import pytest

from repro.obs import (
    NULL,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    resolve_telemetry,
    telemetry_session,
)

pytestmark = pytest.mark.telemetry


class FakeClock:
    """Deterministic clock: every read advances by `step` seconds."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        self.t += self.step
        return self.t


class TestSpans:
    def test_nesting_and_attrs(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("outer", iteration=0):
            with tel.span("inner", mode=2):
                pass
        outer = tel.record.spans_named("outer")[0]
        inner = tel.record.spans_named("inner")[0]
        assert inner.parent == outer.id
        assert outer.parent is None
        assert outer.attrs == {"iteration": 0}
        assert inner.attrs == {"mode": 2}
        assert not outer.open and not inner.open
        assert outer.dur > 0.0

    def test_close_drains_leaked_children(self):
        tel = Telemetry(clock=FakeClock())
        outer = tel.open_span("outer")
        tel.open_span("leaked")
        tel.close_span(outer)  # must close the child first
        leaked = tel.record.spans_named("leaked")[0]
        assert not leaked.open
        assert leaked.dur > 0.0
        assert tel._stack == []

    def test_close_is_idempotent(self):
        tel = Telemetry(clock=FakeClock())
        span = tel.open_span("once")
        tel.close_span(span)
        dur = span.dur
        tel.close_span(span)
        assert span.dur == dur

    def test_session_close_drains_stack(self):
        tel = Telemetry(clock=FakeClock())
        tel.open_span("a")
        tel.open_span("b")
        tel.close()
        assert all(not s.open for s in tel.record.spans)

    def test_span_tree_lines_indent(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("run"):
            with tel.span("phase"):
                pass
        lines = tel.record.span_tree_lines()
        assert lines[0].startswith("run ")
        assert lines[1].startswith("  phase ")


class TestAmbientSession:
    def test_default_is_null(self):
        assert current_telemetry() is NULL

    def test_activate_sets_and_resets(self):
        tel = Telemetry()
        with tel.activate():
            assert current_telemetry() is tel
        assert current_telemetry() is NULL

    def test_telemetry_session_joined_by_auto(self):
        with telemetry_session(kind="test") as tel:
            assert resolve_telemetry("auto") is tel
            assert tel.record.meta["kind"] == "test"
        assert resolve_telemetry("auto") is NULL

    def test_off_forces_null_even_inside_session(self):
        with telemetry_session():
            assert resolve_telemetry("off") is NULL
            assert resolve_telemetry(False) is NULL

    def test_on_makes_fresh_session(self):
        with telemetry_session() as ambient:
            fresh = resolve_telemetry("on")
            assert fresh is not ambient
            assert fresh.enabled

    def test_instance_passthrough_and_rejects_garbage(self):
        tel = Telemetry()
        assert resolve_telemetry(tel) is tel
        with pytest.raises(ValueError, match="telemetry"):
            resolve_telemetry("loud")


class TestNullTelemetry:
    def test_everything_is_noop(self):
        null = NullTelemetry()
        assert not null.enabled
        with null.span("anything", mode=1) as span:
            span.attrs["x"] = 1  # writable sink, discarded
        null.counter("c")
        null.gauge("g", 1.0)
        null.observe("h", 2.0)
        null.event("kind", "PHASE")
        null.set_meta(a=1)
        null.flush()
        null.close()
        assert null.open_span("x") is None
        null.close_span(None)
        assert null.record is None and null.metrics is None

    def test_null_attach_leaves_executor_unhooked(self):
        from repro.machine.executor import Executor

        ex = Executor("cpu")
        NULL.attach_executor(ex)
        assert ex.on_kernel is None
