"""Baseline store + tolerance-banded regression classification."""

import json

import pytest

from repro.obs.analysis.baseline import (
    DEFAULT_TOLERANCE,
    BaselineStore,
    baseline_key,
    compare_metrics,
    diff_against_store,
    metric_direction,
    validate_baseline,
)

pytestmark = pytest.mark.telemetry


def _baseline(key="fig5__a100__r32__blco", metrics=None, **extra):
    doc = {
        "type": "baseline",
        "schema_version": 1,
        "key": key,
        "meta": {"device": "a100"},
        "metrics": metrics or {"nips.speedup": 2.0, "geomean.speedup": 3.0},
    }
    doc.update(extra)
    return doc


class TestKeying:
    def test_key_layout(self):
        assert baseline_key("fig5", "A100", 32, "blco") == "fig5__a100__r32__blco"
        assert baseline_key("fig4", "h100", 16) == "fig4__h100__r16"


class TestDirections:
    @pytest.mark.parametrize("name,expected", [
        ("nips.speedup", "higher"),
        ("geomean.speedup", "higher"),
        ("cstf.fit", "higher"),
        ("update.seconds", "lower"),
        ("gpu.s_per_iter", "lower"),
        ("aux.bytes", "lower"),
        ("mttkrp.calls", "either"),
    ])
    def test_direction_inference(self, name, expected):
        assert metric_direction(name) == expected


class TestCompare:
    def test_flat_within_band(self):
        deltas = compare_metrics({"x.speedup": 2.04}, {"x.speedup": 2.0})
        assert [d.status for d in deltas] == ["flat"]
        assert not deltas[0].failed

    def test_higher_better_drop_regresses(self):
        (d,) = compare_metrics({"x.speedup": 1.5}, {"x.speedup": 2.0})
        assert d.status == "regressed" and d.failed
        assert d.ratio == pytest.approx(0.75)

    def test_higher_better_gain_improves(self):
        (d,) = compare_metrics({"x.speedup": 2.5}, {"x.speedup": 2.0})
        assert d.status == "improved" and not d.failed

    def test_lower_better_inverts(self):
        (d,) = compare_metrics({"t.seconds": 0.5}, {"t.seconds": 1.0})
        assert d.status == "improved"
        (d,) = compare_metrics({"t.seconds": 2.0}, {"t.seconds": 1.0})
        assert d.status == "regressed"

    def test_two_sided_metric_fails_on_any_departure(self):
        (d,) = compare_metrics({"n.calls": 12.0}, {"n.calls": 9.0})
        assert d.status == "regressed"

    def test_missing_metric_is_a_failure(self):
        (d,) = compare_metrics({}, {"x.speedup": 2.0})
        assert d.status == "missing" and d.failed and d.current is None

    def test_new_metric_is_informational(self):
        (d,) = compare_metrics({"x.speedup": 2.0}, {})
        assert d.status == "new" and not d.failed

    def test_per_metric_tolerance_override(self):
        current, base = {"x.speedup": 1.8}, {"x.speedup": 2.0}
        (strict,) = compare_metrics(current, base)
        assert strict.status == "regressed"
        (loose,) = compare_metrics(current, base, tolerances={"x.speedup": 0.15})
        assert loose.status == "flat"

    def test_zero_baseline_handled(self):
        (d,) = compare_metrics({"x.speedup": 0.0}, {"x.speedup": 0.0})
        assert d.status == "flat"


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = BaselineStore(tmp_path)
        path = store.save(_baseline())
        assert path.name == "fig5__a100__r32__blco.json"
        doc = store.load("fig5__a100__r32__blco")
        assert doc["metrics"]["nips.speedup"] == 2.0
        assert store.keys() == ["fig5__a100__r32__blco"]

    def test_load_absent_returns_none(self, tmp_path):
        assert BaselineStore(tmp_path).load("nope") is None
        assert BaselineStore(tmp_path / "missing-dir").keys() == []

    def test_save_refuses_invalid(self, tmp_path):
        bad = _baseline()
        bad["metrics"]["oops"] = "not-a-number"
        with pytest.raises(ValueError, match="invalid baseline"):
            BaselineStore(tmp_path).save(bad)

    def test_load_rejects_renamed_file(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.save(_baseline())
        (tmp_path / "fig5__a100__r32__blco.json").rename(tmp_path / "other.json")
        with pytest.raises(ValueError, match="keyed"):
            store.load("other")

    def test_load_rejects_schema_drift(self, tmp_path):
        store = BaselineStore(tmp_path)
        (tmp_path / "x.json").parent.mkdir(exist_ok=True, parents=True)
        (tmp_path / "x.json").write_text(json.dumps({"type": "baseline"}),
                                         encoding="utf-8")
        with pytest.raises(ValueError, match="invalid baseline"):
            store.load("x")

    def test_validate_baseline_schema(self):
        assert validate_baseline(_baseline()) == []
        assert validate_baseline({"type": "bench"}) != []


class TestDiffAgainstStore:
    def _store(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.save(_baseline())
        return store

    def _group(self, metrics=None):
        return {
            "key": "fig5__a100__r32__blco",
            "figure": "fig5",
            "meta": {},
            "metrics": metrics or {"nips.speedup": 2.0, "geomean.speedup": 3.0},
        }

    def test_identical_run_is_ok(self, tmp_path):
        report = diff_against_store([self._group()], self._store(tmp_path))
        assert report.ok and report.exit_code == 0
        assert report.counts() == {"flat": 2}

    def test_regression_sets_exit_code(self, tmp_path):
        report = diff_against_store(
            [self._group({"nips.speedup": 1.0, "geomean.speedup": 3.0})],
            self._store(tmp_path),
        )
        assert not report.ok and report.exit_code == 1
        (reg,) = report.regressions
        assert reg.name == "fig5__a100__r32__blco.nips.speedup"

    def test_group_without_baseline_is_informational(self, tmp_path):
        group = dict(self._group(), key="fig9__a100__r32")
        report = diff_against_store([group], BaselineStore(tmp_path))
        assert report.new_groups == ["fig9__a100__r32"]
        assert report.ok

    def test_baseline_without_group_fails(self, tmp_path):
        report = diff_against_store([], self._store(tmp_path))
        assert report.missing_groups == ["fig5__a100__r32__blco"]
        assert report.exit_code == 1

    def test_baseline_tolerance_field_respected(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.save(_baseline(tolerance=0.5))
        report = diff_against_store(
            [self._group({"nips.speedup": 1.2, "geomean.speedup": 3.0})], store
        )
        assert report.ok  # 40% drop sits inside the 50% band

    def test_cli_tolerance_overrides_baseline(self, tmp_path):
        store = BaselineStore(tmp_path)
        store.save(_baseline(tolerance=0.5))
        report = diff_against_store(
            [self._group({"nips.speedup": 1.2, "geomean.speedup": 3.0})],
            store, tolerance=DEFAULT_TOLERANCE,
        )
        assert not report.ok
