"""The run doctor: each detector fires on its failure mode and stays quiet
on healthy runs.

Acceptance (perf-lab issue): ``diagnose`` must flag an ADMM stall injected
with the FaultInjector, naming the offending update spans and outer
iterations in its evidence.
"""

import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.obs.analysis import diagnose
from repro.obs.analysis.doctor import Finding
from repro.obs.record import ResilienceTraceEvent, RunRecord, Span
from repro.resilience.faults import FaultInjector, FaultSpec
from repro.tensor.synthetic import planted_sparse_cp

pytestmark = [pytest.mark.telemetry, pytest.mark.faults]


@pytest.fixture(scope="module")
def tensor():
    t, _ = planted_sparse_cp((14, 12, 10), rank=3, factor_sparsity=0.4, seed=5)
    return t


def _config(**overrides):
    base = dict(
        rank=3, max_iters=3, update="cuadmm", device="a100",
        mttkrp_format="blco", seed=0, telemetry=True,
        update_params={"inner_iters": 4},
    )
    base.update(overrides)
    return CstfConfig(**base)


class TestHealthyRun:
    def test_no_findings(self, tensor):
        result = cstf(tensor, _config())
        assert diagnose(result.telemetry) == []


class TestAdmmStallAcceptance:
    @pytest.fixture(scope="class")
    def stalled(self, tensor):
        # A NaN injected into MTTKRP flows into the update under the "warn"
        # sentinel (no repair), so the ADMM inner loop genuinely diverges
        # and walks the whole escalation ladder.
        injector = FaultInjector(
            [FaultSpec(phase="MTTKRP", kind="nan", probability=1.0, count=1)],
            seed=0,
        )
        return cstf(tensor, _config(resilience="warn", fault_injector=injector))

    def test_stall_flagged_with_span_and_iteration(self, stalled):
        findings = diagnose(stalled.telemetry)
        stall = next(f for f in findings if f.code == "admm_stall")
        # The give-ups make it an error, and it must rank first.
        assert stall.severity == "error"
        assert findings[0] is stall
        span_ids = stall.evidence["span_ids"]
        assert span_ids, "stall finding must name evidence spans"
        by_id = {s.id: s for s in stalled.telemetry.spans}
        assert all(by_id[i].name == "update" for i in span_ids)
        assert stall.evidence["iterations"], "stall finding must name iterations"
        assert stall.evidence["giveups"] > 0
        # The summary itself names the spans and iterations for humans.
        assert "iteration" in stall.summary and "#" in stall.summary

    def test_rho_thrash_reported_alongside(self, stalled):
        codes = [f.code for f in diagnose(stalled.telemetry)]
        assert "rho_thrash" in codes

    def test_works_from_result_object_directly(self, stalled):
        # load_run unwraps CstfResult.telemetry: no files, no explicit record.
        assert any(f.code == "admm_stall" for f in diagnose(stalled))


class TestSyntheticDetectors:
    """Detectors driven by hand-built records: exact control of the signal."""

    def _record(self):
        rec = RunRecord()
        rec.metrics_summary = {"counters": {}, "gauges": {}, "histograms": {}}
        return rec

    def test_fit_oscillation_from_fit_spans(self):
        rec = self._record()
        fits = [0.5, 0.6, 0.4, 0.7, 0.65]
        for i, fit in enumerate(fits):
            rec.spans.append(Span(id=i, name="fit", parent=None, t0=float(i),
                                  attrs={"fit": fit, "iteration": i + 1},
                                  dur=0.1, open=False))
        (finding,) = diagnose(rec)
        assert finding.code == "fit_oscillation"
        assert finding.evidence["drops"] == 2
        assert finding.evidence["span_ids"] == [2, 4]
        assert finding.evidence["iterations"] == [3, 5]
        assert finding.evidence["worst_drop"] == pytest.approx(-0.2)

    def test_fit_oscillation_fallback_histogram(self):
        rec = self._record()
        rec.metrics_summary["histograms"]["cstf.fit_delta"] = {
            "count": 5, "min": -0.1, "max": 0.2, "mean": 0.05,
        }
        (finding,) = diagnose(rec)
        assert finding.code == "fit_oscillation"
        assert finding.evidence["worst_drop"] == -0.1

    def test_monotone_fit_is_silent(self):
        rec = self._record()
        for i, fit in enumerate([0.1, 0.2, 0.3]):
            rec.spans.append(Span(id=i, name="fit", parent=None, t0=float(i),
                                  attrs={"fit": fit}, dur=0.1, open=False))
        assert diagnose(rec) == []

    def test_blco_imbalance_gauge(self):
        rec = self._record()
        rec.metrics_summary["gauges"]["mttkrp.blco.block_imbalance"] = 3.5
        rec.metrics_summary["gauges"]["mttkrp.blco.blocks"] = 8.0
        rec.spans.append(Span(id=0, name="mttkrp_kernel", parent=None, t0=0.0,
                              attrs={"format": "blco", "mode": 0}, dur=0.1,
                              open=False))
        (finding,) = diagnose(rec)
        assert finding.code == "blco_load_imbalance"
        assert finding.evidence["span_ids"] == [0]
        assert "3.5x" in finding.summary and "8 blocks" in finding.summary

    def test_balanced_blocks_silent(self):
        rec = self._record()
        rec.metrics_summary["gauges"]["mttkrp.blco.block_imbalance"] = 1.2
        assert diagnose(rec) == []

    def test_checkpoint_gap(self):
        rec = self._record()
        rec.events.append(ResilienceTraceEvent(
            kind="checkpoint_resumed", phase="CHECKPOINT", ts=0.0, iteration=3))
        findings = diagnose(rec)
        codes = [f.code for f in findings]
        assert codes == ["checkpoint_gap", "checkpoint_resume"]  # warn before info

    def test_resume_with_later_save_is_not_a_gap(self):
        rec = self._record()
        rec.events.append(ResilienceTraceEvent(
            kind="checkpoint_resumed", phase="CHECKPOINT", ts=0.0, iteration=3))
        rec.events.append(ResilienceTraceEvent(
            kind="checkpoint_saved", phase="CHECKPOINT", ts=1.0, iteration=5))
        codes = [f.code for f in diagnose(rec)]
        assert codes == ["checkpoint_resume"]

    def test_rho_thrash_needs_repeated_rescales(self):
        rec = self._record()
        # Two rescales: legitimate adaptation, not thrash.
        for i in range(2):
            rec.events.append(ResilienceTraceEvent(
                kind="admm_rho_rescale", phase="UPDATE", ts=float(i), mode=0))
        assert diagnose(rec) == []
        rec.events.append(ResilienceTraceEvent(
            kind="admm_rho_rescale", phase="UPDATE", ts=2.0, mode=0))
        (finding,) = diagnose(rec)
        assert finding.code == "rho_thrash"
        assert finding.evidence["rescales"] == 3

    def test_degraded_execution_from_events(self):
        rec = self._record()
        rec.events.append(ResilienceTraceEvent(
            kind="run_retry", phase="SUPERVISE", ts=0.0,
            data={"tier": "sharded engine", "attempt": 1}))
        rec.events.append(ResilienceTraceEvent(
            kind="execution_degraded", phase="SUPERVISE", ts=1.0,
            data={"from_tier": "sharded engine", "to_tier": "chunked engine"}))
        rec.metrics_summary["counters"]["resilience.retries"] = 1
        rec.metrics_summary["counters"]["resilience.degradations"] = 1
        (finding,) = diagnose(rec)
        assert finding.code == "degraded_execution"
        assert finding.severity == "warn"
        assert finding.evidence["degraded_to"] == ["chunked engine"]
        assert finding.evidence["counters"]["degradations"] == 1
        assert "chunked engine" in finding.summary

    def test_shard_recoveries_alone_are_info(self):
        rec = self._record()
        rec.events.append(ResilienceTraceEvent(
            kind="shard_retry", phase="MTTKRP", ts=0.0, mode=1))
        rec.metrics_summary["counters"]["engine.shard.retries"] = 1
        rec.metrics_summary["counters"]["engine.plan.repairs"] = 2
        (finding,) = diagnose(rec)
        assert finding.code == "degraded_execution"
        assert finding.severity == "info"
        assert finding.evidence["shard_events"] == 1
        assert "2 plan repairs" in finding.summary

    def test_clean_run_has_no_degradation_finding(self):
        rec = self._record()
        rec.metrics_summary["counters"]["mttkrp.calls"] = 12.0
        assert all(f.code != "degraded_execution" for f in diagnose(rec))


class TestLostWorkers:
    """The process-backend worker-death detector."""

    def _record(self):
        rec = RunRecord()
        rec.metrics_summary = {"counters": {}, "gauges": {}, "histograms": {}}
        return rec

    def test_lost_workers_flagged_with_exitcodes(self):
        rec = self._record()
        for i, it in enumerate([2, 5]):
            rec.events.append(ResilienceTraceEvent(
                kind="worker_lost", phase="MTTKRP", ts=float(i), mode=0,
                iteration=it, data={"shard": i, "exitcode": -9}))
        rec.metrics_summary["counters"]["engine.backend.workers_lost"] = 2
        rec.metrics_summary["counters"]["engine.backend.respawns"] = 2
        findings = diagnose(rec)
        lost = next(f for f in findings if f.code == "lost_workers")
        assert lost.severity == "warn"
        assert lost.evidence["workers_lost"] == 2
        assert lost.evidence["respawns"] == 2
        assert lost.evidence["exitcodes"] == [-9]
        assert lost.evidence["iterations"] == [2, 5]
        assert "bit-identical" in lost.summary

    def test_counter_alone_is_enough(self):
        """A worker lost outside an event-logged dispatch (counter only)
        still fires the detector."""
        rec = self._record()
        rec.metrics_summary["counters"]["engine.backend.workers_lost"] = 1
        (finding,) = [f for f in diagnose(rec) if f.code == "lost_workers"]
        assert finding.evidence["workers_lost"] == 1

    def test_quiet_without_losses(self):
        rec = self._record()
        rec.metrics_summary["counters"]["engine.backend.respawns"] = 1
        assert all(f.code != "lost_workers" for f in diagnose(rec))

    def test_degraded_execution_counts_store_quarantines(self):
        rec = self._record()
        rec.metrics_summary["counters"]["engine.store.quarantined"] = 1
        rec.metrics_summary["counters"]["engine.backend.workers_lost"] = 1
        findings = diagnose(rec)
        degraded = next(f for f in findings if f.code == "degraded_execution")
        assert degraded.evidence["counters"]["store entries quarantined"] == 1
        assert degraded.evidence["counters"]["workers lost"] == 1
        assert "1 workers lost" in degraded.summary


class TestSilentWorkers:
    """The cross-process observability-hole detector."""

    def _record(self):
        rec = RunRecord()
        rec.metrics_summary = {"counters": {}, "gauges": {}, "histograms": {}}
        return rec

    def _shard(self, rec, span_id, shard, *, kernel=True, pid=900):
        rec.spans.append(Span(
            id=span_id, name="shard", parent=None, t0=0.0,
            attrs={"shard": shard, "nnz": 100}, dur=0.01, open=False,
        ))
        if kernel:
            rec.spans.append(Span(
                id=span_id + 1, name="shard_kernel", parent=span_id, t0=0.0,
                attrs={"shard": shard}, dur=0.008, open=False,
                worker={"pid": pid + shard, "id": shard},
            ))

    def test_silent_shard_flagged_with_span_evidence(self):
        rec = self._record()
        self._shard(rec, 0, 0)
        self._shard(rec, 10, 1, kernel=False)  # shard 1 shipped nothing
        rec.metrics_summary["counters"]["obs.worker.silent"] = 1
        findings = diagnose(rec)
        silent = next(f for f in findings if f.code == "silent_worker")
        assert silent.severity == "warn"
        assert silent.evidence["span_ids"] == [10]
        assert silent.evidence["shards"] == [1]
        assert silent.evidence["silent_counter"] == 1
        assert "no kernel spans" in silent.summary

    def test_counted_under_degraded_execution(self):
        rec = self._record()
        self._shard(rec, 0, 0, kernel=False)
        rec.metrics_summary["counters"]["obs.worker.silent"] = 1
        degraded = next(
            f for f in diagnose(rec) if f.code == "degraded_execution"
        )
        assert degraded.evidence["counters"]["silent workers"] == 1
        assert "1 silent workers" in degraded.summary

    def test_counter_without_spans_still_fires(self):
        """A silent shard whose span record was lost entirely (e.g. trace
        loaded from a truncated file) is still reported via the counter."""
        rec = self._record()
        self._shard(rec, 0, 0)  # the one recorded shard is attributed
        rec.metrics_summary["counters"]["obs.worker.silent"] = 2
        silent = next(f for f in diagnose(rec) if f.code == "silent_worker")
        assert silent.evidence["span_ids"] == []
        assert silent.evidence["silent_counter"] == 2
        assert silent.score == 2.0

    def test_quiet_when_every_shard_attributed(self):
        rec = self._record()
        for i, sid in enumerate((0, 10, 20)):
            self._shard(rec, sid, i)
        assert all(f.code != "silent_worker" for f in diagnose(rec))

    def test_quiet_without_shard_spans(self):
        """Serial, unsharded runs have no shard spans and no finding."""
        rec = self._record()
        rec.spans.append(Span(
            id=0, name="mttkrp", parent=None, t0=0.0, dur=0.1, open=False,
        ))
        assert all(f.code != "silent_worker" for f in diagnose(rec))


class TestResourcePressure:
    """The resource-pressure detector: survived degradations, ranked."""

    def _record(self):
        rec = RunRecord()
        rec.metrics_summary = {"counters": {}, "gauges": {}, "histograms": {}}
        return rec

    def test_events_and_counters_aggregate(self):
        rec = self._record()
        rec.events.append(ResilienceTraceEvent(
            kind="worker_recycled", phase="MTTKRP", ts=0.0, mode=0,
            iteration=1, data={"worker": 2, "rss": 9000000, "budget": 8000000}))
        rec.events.append(ResilienceTraceEvent(
            kind="transport_downgraded", phase="MTTKRP", ts=1.0, mode=1,
            iteration=2, data={}))
        rec.metrics_summary["counters"]["engine.shm.trims"] = 3
        rec.metrics_summary["counters"]["obs.sink.dropped"] = 4
        (finding,) = [f for f in diagnose(rec) if f.code == "resource_pressure"]
        assert finding.severity == "warn"
        counters = finding.evidence["counters"]
        assert counters["workers recycled over the memory budget"] == 1
        assert counters["shm dispatches downgraded to pipe transport"] == 1
        assert counters["idle shm segments trimmed"] == 3
        assert counters["telemetry records dropped by a degraded sink"] == 4
        assert finding.evidence["iterations"] == [1, 2]
        assert "bit-identical" in finding.summary

    def test_counter_alone_is_enough(self):
        rec = self._record()
        rec.metrics_summary["counters"]["engine.proc.workers_recycled"] = 2
        (finding,) = [f for f in diagnose(rec) if f.code == "resource_pressure"]
        assert finding.evidence["counters"][
            "workers recycled over the memory budget"] == 2

    def test_near_budget_rss_alone_is_info(self):
        """No degradation fired, but peak RSS is already at 90% of the
        budget — worth a heads-up before the next run recycles."""
        rec = self._record()
        rec.metrics_summary["gauges"]["engine.proc.worker_rss_peak"] = 9.0e6
        rec.metrics_summary["gauges"]["engine.proc.memory_budget"] = 1.0e7
        (finding,) = [f for f in diagnose(rec) if f.code == "resource_pressure"]
        assert finding.severity == "info"
        assert finding.evidence["rss_budget_ratio"] == pytest.approx(0.9)

    def test_comfortable_rss_is_silent(self):
        rec = self._record()
        rec.metrics_summary["gauges"]["engine.proc.worker_rss_peak"] = 5.0e6
        rec.metrics_summary["gauges"]["engine.proc.memory_budget"] = 1.0e7
        assert all(f.code != "resource_pressure" for f in diagnose(rec))

    def test_clean_run_is_silent(self):
        assert all(
            f.code != "resource_pressure" for f in diagnose(self._record())
        )

    def test_enospc_skips_counted(self):
        rec = self._record()
        rec.metrics_summary["counters"]["resilience.checkpoint.skips"] = 1
        rec.metrics_summary["counters"]["engine.store.write_errors"] = 2
        (finding,) = [f for f in diagnose(rec) if f.code == "resource_pressure"]
        assert finding.evidence["counters"][
            "checkpoint writes skipped (ENOSPC)"] == 1
        assert finding.evidence["counters"][
            "plan-store writes skipped (ENOSPC)"] == 2


class TestRanking:
    def test_severity_then_score(self):
        findings = sorted(
            [
                Finding(code="c", severity="info", summary="", score=99.0),
                Finding(code="a", severity="error", summary="", score=1.0),
                Finding(code="b", severity="warn", summary="", score=5.0),
                Finding(code="b2", severity="warn", summary="", score=50.0),
            ],
            key=lambda f: ({"error": 0, "warn": 1, "info": 2}[f.severity], -f.score),
        )
        assert [f.code for f in findings] == ["a", "b2", "b", "c"]

    def test_real_diagnose_orders_error_first(self, tensor):
        injector = FaultInjector(
            [FaultSpec(phase="MTTKRP", kind="nan", probability=1.0, count=1)],
            seed=0,
        )
        result = cstf(tensor, _config(resilience="warn", fault_injector=injector))
        severities = [f.severity for f in diagnose(result.telemetry)]
        order = {"error": 0, "warn": 1, "info": 2}
        assert severities == sorted(severities, key=order.__getitem__)
