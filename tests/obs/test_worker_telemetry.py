"""Cross-process telemetry plumbing: worker-side capture sessions,
incremental batch drains, and the parent-side merger that re-roots
shipped spans with pid/worker attribution.
"""

import os

import pytest

from repro.obs import (
    Telemetry,
    WorkerTelemetrySession,
    current_telemetry,
    merge_worker_batch,
    validate_record,
)

pytestmark = pytest.mark.telemetry


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


class TestWorkerSession:
    def test_has_no_sink(self):
        session = WorkerTelemetrySession(worker_id=3)
        assert session._sink is None
        assert session.worker_id == 3

    def test_drain_ships_closed_spans_once(self):
        clock = FakeClock()
        session = WorkerTelemetrySession(clock=clock)
        with session.span("shard_kernel", shard=0):
            clock.tick()
        batch = session.drain()
        assert [s["name"] for s in batch["spans"]] == ["shard_kernel"]
        assert batch["spans"][0]["dur"] == 1.0
        assert batch["spans"][0]["attrs"]["shard"] == 0
        # A second drain with no new activity ships nothing.
        assert session.drain()["spans"] == []

    def test_open_spans_stay_behind(self):
        clock = FakeClock()
        session = WorkerTelemetrySession(clock=clock)
        outer = session.open_span("outer")
        with session.span("inner"):
            clock.tick()
        batch = session.drain()
        assert [s["name"] for s in batch["spans"]] == ["inner"]
        session.close_span(outer)
        batch = session.drain()
        assert [s["name"] for s in batch["spans"]] == ["outer"]

    def test_counters_ship_as_deltas(self):
        session = WorkerTelemetrySession()
        session.counter("engine.store.hits", 3)
        assert session.drain()["counters"] == {"engine.store.hits": 3}
        session.counter("engine.store.hits", 2)
        assert session.drain()["counters"] == {"engine.store.hits": 2}
        assert session.drain()["counters"] == {}

    def test_gauges_ship_when_changed(self):
        session = WorkerTelemetrySession()
        session.gauge("g", 1.5)
        assert session.drain()["gauges"] == {"g": 1.5}
        assert session.drain()["gauges"] == {}
        session.gauge("g", 1.5)  # same value: no change, no ship
        assert session.drain()["gauges"] == {}
        session.gauge("g", 2.5)
        assert session.drain()["gauges"] == {"g": 2.5}

    def test_histograms_ship_new_samples_only(self):
        session = WorkerTelemetrySession()
        session.observe("h", 1.0)
        session.observe("h", 2.0)
        assert session.drain()["hists"] == {"h": [1.0, 2.0]}
        session.observe("h", 3.0)
        assert session.drain()["hists"] == {"h": [3.0]}
        assert session.drain()["hists"] == {}

    def test_events_ship_incrementally(self):
        session = WorkerTelemetrySession()
        session.event("plan_repaired", "STORE", detail="x")
        batch = session.drain()
        assert [e["kind"] for e in batch["events"]] == ["plan_repaired"]
        assert session.drain()["events"] == []

    def test_batch_identifies_pid_and_worker(self):
        batch = WorkerTelemetrySession(worker_id=7).drain()
        assert batch["pid"] == os.getpid()
        assert batch["worker"] == 7
        assert batch["overhead_s"] >= 0.0

    def test_batch_is_json_serializable(self):
        import json

        session = WorkerTelemetrySession()
        with session.span("shard_kernel", shard=1, mode=2):
            session.counter("c")
            session.observe("h", 0.5)
        json.dumps(session.drain())  # must not raise


class TestMergeWorkerBatch:
    def _batch(self, *, pid=4242, worker=1, spans=()):
        return {
            "pid": pid, "worker": worker, "spans": list(spans),
            "counters": {}, "gauges": {}, "hists": {}, "events": [],
            "overhead_s": 0.001,
        }

    def test_spans_remapped_and_attributed(self):
        tel = Telemetry()
        anchor = tel.add_span("shard", 5.0, 2.0)
        batch = self._batch(spans=[
            {"id": 0, "parent": None, "name": "shard_kernel",
             "ts": 100.0, "dur": 1.0, "attrs": {"shard": 1}},
            {"id": 1, "parent": 0, "name": "chunk",
             "ts": 100.2, "dur": 0.5, "attrs": {}},
        ])
        assert merge_worker_batch(tel, batch, anchor=anchor) == 2
        kernel = next(s for s in tel.record.spans if s.name == "shard_kernel")
        chunk = next(s for s in tel.record.spans if s.name == "chunk")
        # Re-rooted under the anchor, child hierarchy preserved via remap.
        assert kernel.parent == anchor.id
        assert chunk.parent == kernel.id
        assert kernel.worker == {"pid": 4242, "id": 1}
        # Timestamps rebased onto the anchor's start.
        assert kernel.t0 == anchor.t0
        assert chunk.t0 == pytest.approx(anchor.t0 + 0.2)

    def test_orphan_parent_reroots_under_anchor(self):
        tel = Telemetry()
        anchor = tel.add_span("shard", 0.0, 1.0)
        batch = self._batch(spans=[
            {"id": 5, "parent": 3, "name": "inner",  # parent 3 never shipped
             "ts": 0.0, "dur": 0.1, "attrs": {}},
        ])
        merge_worker_batch(tel, batch, anchor=anchor)
        (inner,) = [s for s in tel.record.spans if s.name == "inner"]
        assert inner.parent == anchor.id

    def test_anchorless_flush_merges_at_now(self):
        tel = Telemetry()
        batch = self._batch(spans=[
            {"id": 0, "parent": None, "name": "late",
             "ts": 9.0, "dur": 0.1, "attrs": {}},
        ])
        assert merge_worker_batch(tel, batch) == 1
        (late,) = [s for s in tel.record.spans if s.name == "late"]
        assert late.parent is None
        assert late.worker == {"pid": 4242, "id": 1}

    def test_metrics_merge_into_registry(self):
        tel = Telemetry()
        batch = self._batch()
        batch["counters"] = {"engine.store.hits": 2}
        batch["gauges"] = {"g": 7.0}
        batch["hists"] = {"h": [1.0, 2.0]}
        merge_worker_batch(tel, batch)
        summary = tel.metrics.summary()
        assert summary["counters"]["engine.store.hits"] == 2
        assert summary["gauges"]["g"] == 7.0
        assert summary["histograms"]["h"]["count"] == 2

    def test_events_gain_worker_pid(self):
        tel = Telemetry()
        batch = self._batch()
        batch["events"] = [{"kind": "plan_repaired", "phase": "STORE",
                            "mode": None, "iteration": None,
                            "detail": "d", "data": {}}]
        merge_worker_batch(tel, batch)
        (ev,) = tel.record.events
        assert ev.data["worker_pid"] == 4242

    def test_overhead_meter_accumulates(self):
        tel = Telemetry()
        batch = self._batch(spans=[
            {"id": 0, "parent": None, "name": "k",
             "ts": 0.0, "dur": 0.1, "attrs": {}},
        ])
        merge_worker_batch(tel, batch)
        counters = tel.metrics.summary()["counters"]
        assert counters["obs.overhead.batches"] == 1
        assert counters["obs.overhead.spans"] == 1
        assert counters["obs.overhead.worker_s"] == pytest.approx(0.001)
        assert counters["obs.overhead.merge_s"] > 0.0

    def test_none_batch_and_disabled_session_are_noops(self):
        from repro.obs import NULL

        tel = Telemetry()
        assert merge_worker_batch(tel, None) == 0
        assert merge_worker_batch(NULL, self._batch()) == 0
        assert tel.metrics.summary()["counters"] == {}

    def test_merged_span_lines_validate_against_schema(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = Telemetry(jsonl_path=path)
        anchor = tel.add_span("shard", 0.0, 1.0)
        batch = self._batch(spans=[
            {"id": 0, "parent": None, "name": "shard_kernel",
             "ts": 0.0, "dur": 0.5, "attrs": {"shard": 0}},
        ])
        merge_worker_batch(tel, batch, anchor=anchor)
        tel.close()
        from repro.obs import read_jsonl

        for rec in read_jsonl(path):
            assert validate_record(rec) == []
        worker_lines = [
            r for r in read_jsonl(path)
            if r.get("type") == "span" and r.get("worker")
        ]
        assert len(worker_lines) == 1
        assert worker_lines[0]["worker"] == {"pid": 4242, "id": 1}


class TestForkIsolation:
    def test_ambient_session_does_not_cross_fork(self):
        if not hasattr(os, "fork"):
            pytest.skip("fork not available")
        tel = Telemetry()
        with tel.activate():
            r, w = os.pipe()
            pid = os.fork()
            if pid == 0:  # child: report whether the ambient session leaked
                leaked = current_telemetry() is tel
                os.write(w, b"1" if leaked else b"0")
                os._exit(0)
            os.close(w)
            leaked = os.read(r, 1)
            os.close(r)
            os.waitpid(pid, 0)
        assert leaked == b"0", "forked child inherited the parent session"
