"""End-to-end telemetry acceptance: the driver, the device bridge, numerics.

The acceptance contract from the observability issue:

- per-phase simulated seconds in the RunRecord agree with
  ``Timeline.seconds(phase)`` within float tolerance;
- the JSONL stream round-trips to a schema-valid, Perfetto-loadable
  Chrome trace;
- the ``admm.inner_iters`` histogram matches the ground-truth inner
  iteration count;
- telemetry never changes numerics: ``"off"`` is bit-identical to the
  seed behaviour and ``"on"`` matches with rtol=0.
"""

import numpy as np
import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.trace import PHASES
from repro.obs import Telemetry, telemetry_session, validate_jsonl
from repro.tensor.synthetic import planted_sparse_cp

pytestmark = pytest.mark.telemetry

INNER_ITERS = 5
MAX_ITERS = 3


@pytest.fixture(scope="module")
def tensor():
    t, _ = planted_sparse_cp((14, 12, 10), rank=3, factor_sparsity=0.4, seed=5)
    return t


def _config(telemetry):
    return CstfConfig(
        rank=3, max_iters=MAX_ITERS, tol=0.0, update="admm", device="cpu",
        mttkrp_format="coo", seed=0, telemetry=telemetry,
        update_params={"inner_iters": INNER_ITERS},
    )


@pytest.fixture(scope="module")
def traced(tensor):
    return cstf(tensor, _config("on"))


class TestAcceptance:
    def test_phase_seconds_agree_with_timeline(self, traced):
        rec = traced.telemetry
        assert rec is not None
        for phase in PHASES:
            assert rec.phase_seconds(phase) == pytest.approx(
                traced.timeline.seconds(phase), rel=1e-12
            )
        assert rec.sim_total_seconds() == pytest.approx(
            traced.timeline.total_seconds(), rel=1e-12
        )

    def test_admm_inner_iters_histogram_matches_ground_truth(self, traced):
        hist = traced.telemetry.metrics_summary["histograms"]["admm.inner_iters"]
        ndim = 3
        assert hist["count"] == MAX_ITERS * ndim  # one update per mode per iter
        # tol=0.0 disables the inner stopping test, so every update runs the
        # full fixed count — the ground truth is exact.
        assert hist["min"] == INNER_ITERS
        assert hist["max"] == INNER_ITERS
        assert hist["mean"] == INNER_ITERS

    def test_span_tree_covers_the_algorithm(self, traced):
        rec = traced.telemetry
        assert len(rec.spans_named("outer_iter")) == MAX_ITERS
        run = rec.spans_named("run")[0]
        names = {s.name for s in rec.spans}
        assert {"gram", "mttkrp", "update", "normalize", "fit",
                "mttkrp_kernel"} <= names
        assert run.parent is None
        # Device attribution is inclusive: the run span carries the whole
        # simulated total.
        assert run.sim["seconds"] == pytest.approx(rec.sim_total_seconds(), rel=1e-12)

    def test_convergence_metrics_present(self, traced):
        summary = traced.telemetry.metrics_summary
        assert summary["counters"]["cstf.outer_iterations"] == MAX_ITERS
        assert summary["counters"]["mttkrp.calls.coo"] >= MAX_ITERS * 3
        for name in ("cstf.fit", "admm.r_primal", "admm.r_dual", "admm.rho"):
            assert summary["histograms"][name]["count"] > 0
        assert summary["gauges"]["cstf.last_fit"] == traced.fits[-1]


class TestNumericsUnchanged:
    def test_off_and_on_bit_identical(self, tensor):
        off = cstf(tensor, _config("off"))
        on = cstf(tensor, _config("on"))
        assert off.telemetry is None
        assert on.telemetry is not None
        for f_off, f_on in zip(off.kruskal.factors, on.kruskal.factors):
            np.testing.assert_allclose(f_on, f_off, rtol=0, atol=0)
        np.testing.assert_allclose(on.kruskal.weights, off.kruskal.weights,
                                   rtol=0, atol=0)
        assert on.fits == off.fits

    def test_auto_without_session_is_off(self, tensor):
        res = cstf(tensor, _config("auto"))
        assert res.telemetry is None

    def test_auto_joins_ambient_session(self, tensor):
        with telemetry_session() as tel:
            res = cstf(tensor, _config("auto"))
        assert res.telemetry is tel.record
        assert tel.metrics.counters["cstf.outer_iterations"] == MAX_ITERS

    def test_jsonl_stream_is_schema_valid(self, tensor, tmp_path):
        path = tmp_path / "run.jsonl"
        cstf(tensor, _config(Telemetry(jsonl_path=path)))
        assert validate_jsonl(path) == []

    def test_capture_kernels_off_keeps_aggregates(self, tensor):
        tel = Telemetry(capture_kernels=False)
        res = cstf(tensor, _config(tel))
        rec = res.telemetry
        assert rec.kernels == []
        for phase in PHASES:
            assert rec.phase_seconds(phase) == pytest.approx(
                res.timeline.seconds(phase), rel=1e-12
            )
