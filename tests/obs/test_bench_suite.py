"""The bench harness and the regression gate.

Acceptance (perf-lab issue):

- ``run_bench_suite`` produces a document validating against its published
  BENCH schema;
- ``repro diff`` exits 0 against the baselines committed on main;
- perturbing a metric beyond tolerance makes ``repro diff`` exit non-zero.
"""

import io
import json
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.analysis import BaselineStore, bench_to_baselines, validate_bench
from repro.obs.analysis.bench import DEFAULT_DATASETS, run_bench_suite

pytestmark = [pytest.mark.telemetry, pytest.mark.bench]

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
COMMITTED_BASELINES = REPO_ROOT / "benchmarks" / "baselines"


@pytest.fixture(scope="module")
def bench_doc():
    return run_bench_suite()


def _run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestBenchDocument:
    def test_validates_against_published_schema(self, bench_doc):
        assert validate_bench(bench_doc) == []

    def test_covers_the_three_figures(self, bench_doc):
        assert [g["figure"] for g in bench_doc["groups"]] == [
            "fig4", "fig4wall", "fig5", "fig7"
        ]

    def test_default_datasets_present(self, bench_doc):
        fig5 = next(g for g in bench_doc["groups"] if g["figure"] == "fig5")
        for name in DEFAULT_DATASETS:
            assert f"{name}.speedup" in fig5["metrics"]
        assert "geomean.speedup" in fig5["metrics"]

    def test_deterministic(self):
        # fig4wall is measured wall-clock — nondeterministic by nature and
        # excluded here; every simulated group must be bit-stable.
        assert run_bench_suite(wall=False) == run_bench_suite(wall=False)

    def test_wall_group_measures_engine_speedup(self, bench_doc):
        wall = next(g for g in bench_doc["groups"] if g["figure"] == "fig4wall")
        assert wall["tolerance"] == 0.5
        assert wall["meta"]["measured"] == "wall_clock"
        assert wall["metrics"]["geomean.engine_speedup"] > 0.0
        for name in wall["meta"]["datasets"]:
            assert f"{name}.engine_speedup" in wall["metrics"]

    def test_invalid_document_caught(self, bench_doc):
        broken = json.loads(json.dumps(bench_doc))
        broken["groups"][0]["metrics"]["bad"] = "text"
        errors = validate_bench(broken)
        assert errors and "not numeric" in errors[0]


class TestCommittedBaselines:
    """The repo ships baselines generated from this very suite on main."""

    def test_store_is_seeded_and_valid(self):
        store = BaselineStore(COMMITTED_BASELINES)
        keys = store.keys()
        assert len(keys) >= 3
        for key in keys:
            assert store.load(key) is not None  # load() validates

    def test_acceptance_diff_exits_zero_on_main(self, bench_doc, tmp_path):
        bench_path = tmp_path / "BENCH_main.json"
        bench_path.write_text(json.dumps(bench_doc), encoding="utf-8")
        code, text = _run_cli(["diff", str(bench_path),
                               "--baselines", str(COMMITTED_BASELINES)])
        assert code == 0, text
        assert "flat" in text

    def test_acceptance_perturbed_metric_exits_nonzero(self, bench_doc, tmp_path,
                                                       capsys):
        perturbed = json.loads(json.dumps(bench_doc))
        # Perturb a deterministic tight-tolerance group (fig4wall's wide
        # wall-clock band would absorb a factor of two).
        group = next(g for g in perturbed["groups"] if g["figure"] == "fig5")
        name, value = next(iter(group["metrics"].items()))
        group["metrics"][name] = value * 0.5  # far past 5%
        bench_path = tmp_path / "BENCH_perturbed.json"
        bench_path.write_text(json.dumps(perturbed), encoding="utf-8")
        code, text = _run_cli(["diff", str(bench_path),
                               "--baselines", str(COMMITTED_BASELINES)])
        assert code == 1
        assert "regressed" in text
        assert "regression(s) beyond tolerance" in capsys.readouterr().err


class TestBaselineConversion:
    def test_groups_convert_to_valid_baselines(self, bench_doc, tmp_path):
        store = BaselineStore(tmp_path)
        for base in bench_to_baselines(bench_doc, tolerance=0.1):
            store.save(base)
        assert store.keys() == sorted(g["key"] for g in bench_doc["groups"])
        doc = store.load(bench_doc["groups"][0]["key"])
        assert doc["tolerance"] == 0.1
        assert doc["meta"]["figure"] == "fig4"

    def test_group_tolerance_beats_blanket_override(self, bench_doc, tmp_path):
        store = BaselineStore(tmp_path)
        for base in bench_to_baselines(bench_doc, tolerance=0.1):
            store.save(base)
        wall = next(g for g in bench_doc["groups"] if g["figure"] == "fig4wall")
        assert store.load(wall["key"])["tolerance"] == 0.5


class TestBenchScript:
    def test_writes_schema_valid_bench_json(self, tmp_path, monkeypatch):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        try:
            import run_bench_suite as script
        finally:
            sys.path.pop(0)
        out = tmp_path / "BENCH_test.json"
        code = script.main(["--out", str(out), "--quiet",
                            "--datasets", "nips", "--fig4-names", "nips",
                            "--wall-names", "nips", "--wall-nnz", "2000",
                            "--wall-repeats", "1"])
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert validate_bench(doc) == []
        assert doc["config"]["datasets"] == ["nips"]
        assert doc["config"]["wall_nnz"] == 2000
        assert any(g["figure"] == "fig4wall" for g in doc["groups"])

    def test_no_wall_skips_the_wall_group(self, tmp_path):
        sys.path.insert(0, str(REPO_ROOT / "scripts"))
        try:
            import run_bench_suite as script
        finally:
            sys.path.pop(0)
        out = tmp_path / "BENCH_nowall.json"
        code = script.main(["--out", str(out), "--quiet", "--no-wall",
                            "--datasets", "nips", "--fig4-names", "nips"])
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert all(g["figure"] != "fig4wall" for g in doc["groups"])
