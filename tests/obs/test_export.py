"""JSONL sink, the line-contract schema, and the Chrome-trace exporter."""

import io
import json

import pytest

from repro.obs import (
    Telemetry,
    jsonl_to_chrome_trace,
    read_jsonl,
    telemetry_to_chrome_trace,
    validate_jsonl,
    validate_record,
    write_telemetry_chrome_trace,
)
from repro.obs.chrome import PID_DEVICE, PID_HOST, PID_RESILIENCE, PID_WORKERS
from repro.obs.sinks import JsonlSink

pytestmark = pytest.mark.telemetry


def _emit_session(path):
    """A tiny but complete session: meta, spans, metric, event, summary."""
    tel = Telemetry(jsonl_path=path)
    tel.set_meta(kind="test", rank=4)
    with tel.span("run"):
        with tel.span("phase", mode=1):
            tel.observe("latency", 0.5)
        tel.counter("calls")
        tel.event("checkpoint_saved", "CHECKPOINT", iteration=1, detail="x")
    tel.close()
    return tel


class TestJsonlSink:
    def test_roundtrip_and_blank_line_safety(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "meta", "version": 1, "run": {}})
        sink.close()
        path.write_text(path.read_text() + "\n\n")
        assert read_jsonl(path) == [{"type": "meta", "version": 1, "run": {}}]

    def test_file_object_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"type": "meta", "version": 1, "run": {}})
        sink.close()
        assert not buf.closed
        assert buf.getvalue().count("\n") == 1

    def test_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"meta"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(path)


class TestSchema:
    def test_session_stream_validates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_session(path)
        assert validate_jsonl(path) == []
        types = [r["type"] for r in read_jsonl(path)]
        assert types[0] == "meta"
        assert types[-1] == "summary"
        assert "span" in types and "metric" in types and "event" in types

    def test_rejects_unknown_type(self):
        assert validate_record({"type": "bogus"})
        assert validate_record({"no_type": True})

    def test_rejects_missing_required_field(self):
        errors = validate_record({"type": "metric", "kind": "counter", "name": "x"})
        assert any("value" in e for e in errors)

    def test_rejects_bad_enum(self):
        errors = validate_record(
            {"type": "metric", "kind": "dial", "name": "x", "value": 1.0, "ts": 0.0}
        )
        assert errors

    def test_empty_file_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert any("no telemetry records" in e for e in validate_jsonl(path))


class TestChromeTrace:
    def test_three_process_tracks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = _emit_session(path)
        for source in (tel.record, path):
            trace = telemetry_to_chrome_trace(source)
            pids = {e["pid"] for e in trace["traceEvents"]}
            assert {PID_HOST, PID_DEVICE, PID_RESILIENCE} <= pids

    def test_span_events_are_complete_events_in_us(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_session(path)
        trace = jsonl_to_chrome_trace(path)
        spans = [e for e in trace["traceEvents"]
                 if e.get("cat") == "host" and e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"run", "phase"} <= names
        phase = next(e for e in spans if e["name"] == "phase")
        assert phase["args"]["mode"] == 1

    def test_resilience_events_are_instants(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_session(path)
        trace = jsonl_to_chrome_trace(path)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "checkpoint_saved"
        assert instants[0]["pid"] == PID_RESILIENCE

    def test_write_produces_loadable_json(self, tmp_path):
        src = tmp_path / "run.jsonl"
        out = tmp_path / "trace.json"
        _emit_session(src)
        write_telemetry_chrome_trace(src, out)
        loaded = json.loads(out.read_text())
        assert isinstance(loaded["traceEvents"], list)
        assert loaded["otherData"]["kind"] == "test"


def _worker_span(span_id, shard, pid, *, parent=None, name="shard_kernel"):
    return {
        "type": "span", "id": span_id, "parent": parent, "name": name,
        "ts": 0.0, "dur": 0.01, "attrs": {"shard": shard}, "sim": None,
        "worker": {"pid": pid, "id": shard},
    }


def _shard_span(span_id, shard):
    return {
        "type": "span", "id": span_id, "parent": None, "name": "shard",
        "ts": 0.0, "dur": 0.02, "attrs": {"shard": shard, "nnz": 10},
        "sim": None,
    }


class TestWorkerSchema:
    """Schema v2: the optional ``worker`` span field round-trips and its
    absence (v1 legacy lines) stays valid."""

    def test_worker_field_round_trips(self, tmp_path):
        from repro.obs import SCHEMA_VERSION, Telemetry

        assert SCHEMA_VERSION == 2
        path = tmp_path / "run.jsonl"
        tel = Telemetry(jsonl_path=path)
        tel.add_span(
            "shard_kernel", 0.0, 0.5, worker={"pid": 77, "id": 2},
            attrs={"shard": 2},
        )
        tel.close()
        assert validate_jsonl(path) == []
        (line,) = [r for r in read_jsonl(path) if r["type"] == "span"]
        assert line["worker"] == {"pid": 77, "id": 2}

    def test_legacy_span_without_worker_is_valid(self):
        assert validate_record(_shard_span(0, 0)) == []

    def test_null_worker_is_valid(self):
        span = _shard_span(0, 0)
        span["worker"] = None
        assert validate_record(span) == []

    def test_malformed_worker_rejected(self):
        span = _worker_span(0, 0, 42)
        span["worker"] = {"pid": 42}  # id missing
        assert validate_record(span)
        span["worker"] = "pid 42"  # wrong type
        assert validate_record(span)

    def test_ingest_parses_worker(self, tmp_path):
        from repro.obs.analysis import load_run

        path = tmp_path / "run.jsonl"
        lines = [
            {"type": "meta", "version": 2, "run": {}},
            _worker_span(0, 1, 55),
            _shard_span(1, 0),
        ]
        path.write_text("\n".join(json.dumps(x) for x in lines) + "\n")
        record = load_run(path)
        by_name = {s.name: s for s in record.spans}
        assert by_name["shard_kernel"].worker == {"pid": 55, "id": 1}
        assert by_name["shard"].worker is None


class TestWorkerTracks:
    """Chrome export: worker-attributed spans land on per-worker pid
    tracks keyed by slot, with the OS pid as the thread lane."""

    def _records(self):
        return [
            {"type": "meta", "version": 2, "run": {}},
            _shard_span(0, 0),
            _shard_span(1, 1),
            _worker_span(2, 0, 501, parent=0),
            _worker_span(3, 1, 502, parent=1),
        ]

    def test_distinct_pid_per_worker_slot(self):
        trace = telemetry_to_chrome_trace(self._records())
        kernels = [e for e in trace["traceEvents"]
                   if e["ph"] == "X" and e["name"] == "shard_kernel"]
        assert {e["pid"] for e in kernels} == {PID_WORKERS, PID_WORKERS + 1}
        assert {e["tid"] for e in kernels} == {501, 502}
        assert all(e["cat"] == "worker" for e in kernels)
        assert all(e["args"]["worker_pid"] == e["tid"] for e in kernels)

    def test_track_and_lane_names(self):
        trace = telemetry_to_chrome_trace(self._records())
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        track_names = {
            e["pid"]: e["args"]["name"]
            for e in metas if e["name"] == "process_name"
        }
        assert track_names[PID_WORKERS] == "worker 0"
        assert track_names[PID_WORKERS + 1] == "worker 1"
        lanes = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in metas if e["name"] == "thread_name"
        }
        assert lanes[(PID_WORKERS, 501)] == "pid 501"
        assert lanes[(PID_WORKERS + 1, 502)] == "pid 502"

    def test_respawn_keeps_track_name_adds_pid_lane(self):
        """The same worker slot across a respawn: one track, two lanes."""
        records = [
            _shard_span(0, 1),
            _worker_span(1, 1, 601, parent=0),
            _shard_span(2, 1),
            _worker_span(3, 1, 602, parent=2),  # respawned: new OS pid
        ]
        trace = telemetry_to_chrome_trace(records)
        track = PID_WORKERS + 1
        names = [
            e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
            and e["pid"] == track
        ]
        assert names == ["worker 1"]  # one stable track name
        lanes = {
            e["tid"] for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == track
        }
        assert lanes == {601, 602}

    def test_shard_spans_render_side_by_side_on_host(self):
        trace = telemetry_to_chrome_trace(self._records())
        shards = [e for e in trace["traceEvents"]
                  if e["ph"] == "X" and e["name"] == "shard"]
        assert all(e["pid"] == PID_HOST for e in shards)
        assert len({e["tid"] for e in shards}) == 2  # one thread per shard
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for e in shards:
            shard = e["args"]["shard"]
            assert thread_names[(PID_HOST, e["tid"])] == f"shard {shard}"
