"""JSONL sink, the line-contract schema, and the Chrome-trace exporter."""

import io
import json

import pytest

from repro.obs import (
    Telemetry,
    jsonl_to_chrome_trace,
    read_jsonl,
    telemetry_to_chrome_trace,
    validate_jsonl,
    validate_record,
    write_telemetry_chrome_trace,
)
from repro.obs.chrome import PID_DEVICE, PID_HOST, PID_RESILIENCE
from repro.obs.sinks import JsonlSink

pytestmark = pytest.mark.telemetry


def _emit_session(path):
    """A tiny but complete session: meta, spans, metric, event, summary."""
    tel = Telemetry(jsonl_path=path)
    tel.set_meta(kind="test", rank=4)
    with tel.span("run"):
        with tel.span("phase", mode=1):
            tel.observe("latency", 0.5)
        tel.counter("calls")
        tel.event("checkpoint_saved", "CHECKPOINT", iteration=1, detail="x")
    tel.close()
    return tel


class TestJsonlSink:
    def test_roundtrip_and_blank_line_safety(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "meta", "version": 1, "run": {}})
        sink.close()
        path.write_text(path.read_text() + "\n\n")
        assert read_jsonl(path) == [{"type": "meta", "version": 1, "run": {}}]

    def test_file_object_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit({"type": "meta", "version": 1, "run": {}})
        sink.close()
        assert not buf.closed
        assert buf.getvalue().count("\n") == 1

    def test_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"meta"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl(path)


class TestSchema:
    def test_session_stream_validates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_session(path)
        assert validate_jsonl(path) == []
        types = [r["type"] for r in read_jsonl(path)]
        assert types[0] == "meta"
        assert types[-1] == "summary"
        assert "span" in types and "metric" in types and "event" in types

    def test_rejects_unknown_type(self):
        assert validate_record({"type": "bogus"})
        assert validate_record({"no_type": True})

    def test_rejects_missing_required_field(self):
        errors = validate_record({"type": "metric", "kind": "counter", "name": "x"})
        assert any("value" in e for e in errors)

    def test_rejects_bad_enum(self):
        errors = validate_record(
            {"type": "metric", "kind": "dial", "name": "x", "value": 1.0, "ts": 0.0}
        )
        assert errors

    def test_empty_file_is_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert any("no telemetry records" in e for e in validate_jsonl(path))


class TestChromeTrace:
    def test_three_process_tracks(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = _emit_session(path)
        for source in (tel.record, path):
            trace = telemetry_to_chrome_trace(source)
            pids = {e["pid"] for e in trace["traceEvents"]}
            assert {PID_HOST, PID_DEVICE, PID_RESILIENCE} <= pids

    def test_span_events_are_complete_events_in_us(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_session(path)
        trace = jsonl_to_chrome_trace(path)
        spans = [e for e in trace["traceEvents"]
                 if e.get("cat") == "host" and e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"run", "phase"} <= names
        phase = next(e for e in spans if e["name"] == "phase")
        assert phase["args"]["mode"] == 1

    def test_resilience_events_are_instants(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _emit_session(path)
        trace = jsonl_to_chrome_trace(path)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "checkpoint_saved"
        assert instants[0]["pid"] == PID_RESILIENCE

    def test_write_produces_loadable_json(self, tmp_path):
        src = tmp_path / "run.jsonl"
        out = tmp_path / "trace.json"
        _emit_session(src)
        write_telemetry_chrome_trace(src, out)
        loaded = json.loads(out.read_text())
        assert isinstance(loaded["traceEvents"], list)
        assert loaded["otherData"]["kind"] == "test"
