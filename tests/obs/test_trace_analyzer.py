"""Trace analyzer: attribution, critical path, and the traffic claims.

Acceptance (perf-lab issue): the fused auxiliary step must move at most
0.70x the modeled bytes of the unfused plan, checked both as a measured
two-run ratio and against the cost-model counterfactual from one trace.
"""

import io

import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.machine.costmodel import admm_aux_formation_words, admm_aux_step_words
from repro.obs import Telemetry
from repro.obs.analysis import (
    TraceAnalysis,
    analyze_trace,
    aux_traffic_ratio,
    fusion_report,
    load_run,
    preinversion_report,
)
from repro.tensor.synthetic import planted_sparse_cp

pytestmark = pytest.mark.telemetry


@pytest.fixture(scope="module")
def tensor():
    t, _ = planted_sparse_cp((14, 12, 10), rank=3, factor_sparsity=0.4, seed=5)
    return t


def _run(tensor, fuse, preinvert, jsonl=None):
    tel = Telemetry(jsonl_path=jsonl)
    config = CstfConfig(
        rank=3, max_iters=3, update="admm", device="a100", mttkrp_format="blco",
        seed=0, telemetry=tel,
        update_params={"inner_iters": 4, "fuse_ops": fuse, "preinvert": preinvert},
    )
    result = cstf(tensor, config)
    tel.close()  # end the stream with its summary line
    return result


@pytest.fixture(scope="module")
def fused(tensor):
    return _run(tensor, fuse=True, preinvert=True)


@pytest.fixture(scope="module")
def unfused(tensor):
    return _run(tensor, fuse=False, preinvert=False)


class TestAttribution:
    def test_phase_table_shares_sum_to_one(self, fused):
        ta = analyze_trace(fused.telemetry)
        rows = ta.phase_table()
        assert rows, "run produced no simulated phases"
        assert abs(sum(r["share"] for r in rows) - 1.0) < 1e-9
        # rows are sorted by seconds descending
        secs = [r["seconds"] for r in rows]
        assert secs == sorted(secs, reverse=True)

    def test_phase_table_matches_timeline(self, fused):
        ta = analyze_trace(fused.telemetry)
        by_phase = {r["phase"]: r["seconds"] for r in ta.phase_table()}
        for phase, seconds in by_phase.items():
            assert seconds == pytest.approx(fused.timeline.seconds(phase))

    def test_kernel_hotspots_ranked_and_bounded(self, fused):
        ta = analyze_trace(fused.telemetry)
        top = ta.kernel_hotspots(5)
        assert 0 < len(top) <= 5
        secs = [s.seconds for s in top]
        assert secs == sorted(secs, reverse=True)
        everything = ta.kernel_stats()
        assert sum(s.calls for s in everything.values()) == len(
            fused.telemetry.kernels
        )

    def test_memory_bound_uses_machine_balance(self, fused):
        ta = analyze_trace(fused.telemetry)
        stats = ta.kernel_stats()
        # The fused auxiliary kernel is pure streaming traffic: memory-bound
        # on any modeled GPU.
        assert ta.memory_bound(stats["fused_auxiliary"]) is True

    def test_critical_path_runs_root_to_leaf(self, fused):
        ta = analyze_trace(fused.telemetry)
        path = ta.critical_path()
        assert path[0].span.name == "run"
        assert len(path) >= 3
        # inclusive durations never grow while descending
        incl = [n.inclusive for n in path]
        assert all(a >= b for a, b in zip(incl, incl[1:]))

    def test_hotspot_spans_exclusive_time(self, fused):
        ta = analyze_trace(fused.telemetry)
        ranked = ta.hotspot_spans(4)
        assert len(ranked) == 4
        assert all(t >= 0 for _, t in ranked)


class TestFusionClaim:
    def test_measured_formation_ratio_is_two_thirds(self, fused, unfused):
        ratio = aux_traffic_ratio(
            fused.telemetry, unfused.telemetry, formation_only=True
        )
        assert ratio == pytest.approx(2.0 / 3.0, rel=1e-9)

    def test_acceptance_fused_step_under_070(self, fused, unfused):
        """The headline claim: fused auxiliary step moves <= 0.70x the bytes."""
        assert aux_traffic_ratio(fused.telemetry, unfused.telemetry) <= 0.70
        assert fusion_report(fused.telemetry).ratio <= 0.70
        assert fusion_report(fused.telemetry, formation_only=True).ratio <= 0.70

    def test_counterfactual_model_agrees_with_measurement(self, fused, unfused):
        """One-trace modeled ratio matches the two-run measured ratio: the
        counterfactual bytes from the cost model stand in for actually
        running the other plan."""
        measured = aux_traffic_ratio(fused.telemetry, unfused.telemetry)
        modeled = fusion_report(fused.telemetry).ratio
        assert modeled == pytest.approx(measured, rel=0.02)

    def test_report_detects_plan_from_either_side(self, fused, unfused):
        assert fusion_report(fused.telemetry).fused is True
        assert fusion_report(unfused.telemetry).fused is False
        # and both express the same fused-over-unfused ratio
        assert fusion_report(unfused.telemetry).ratio == pytest.approx(
            fusion_report(fused.telemetry).ratio, rel=0.05
        )

    def test_word_model_constants(self):
        assert admm_aux_formation_words(10, fused=True) == 40.0
        assert admm_aux_formation_words(10, fused=False) == 60.0
        assert admm_aux_step_words(1, True) / admm_aux_step_words(1, False) == (
            pytest.approx(15.0 / 26.0)
        )

    def test_non_admm_trace_rejected(self, tensor):
        config = CstfConfig(rank=3, max_iters=1, update="mu", device="a100",
                            mttkrp_format="blco", telemetry=True)
        result = cstf(tensor, config)
        with pytest.raises(ValueError, match="no ADMM auxiliary kernels"):
            fusion_report(result.telemetry)


class TestPreinversionClaim:
    def test_preinverted_run_empties_the_solve_census(self, fused):
        rep = preinversion_report(fused.telemetry)
        assert rep.preinverted is True
        assert rep.apply_inverse_gemms > 0
        # Remaining DTRSMs come only from the one-off dpotri per update
        # call, not from the inner loop.
        assert rep.solves_per_update == pytest.approx(2.0)

    def test_unfused_run_keeps_serialized_solves(self, unfused):
        rep = preinversion_report(unfused.telemetry)
        assert rep.preinverted is False
        assert rep.apply_inverse_gemms == 0
        # Two DTRSMs per inner iteration, every inner iteration.
        assert rep.triangular_solves >= 2 * 4 * 3  # iters * modes(>=3) * 2


class TestJsonlRoundTrip:
    def test_analysis_identical_from_stream(self, tensor, tmp_path):
        path = tmp_path / "run.jsonl"
        live = _run(tensor, fuse=True, preinvert=True, jsonl=str(path)).telemetry
        replayed = load_run(str(path), validate=True)
        assert len(replayed.spans) == len(live.spans)
        assert len(replayed.kernels) == len(live.kernels)
        assert replayed.metrics_summary == live.metrics_summary
        assert fusion_report(replayed).ratio == pytest.approx(
            fusion_report(live).ratio
        )
        live_rows = TraceAnalysis(live).phase_table()
        replay_rows = TraceAnalysis(replayed).phase_table()
        assert [r["phase"] for r in live_rows] == [r["phase"] for r in replay_rows]

    def test_load_run_rejects_invalid_stream(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "id": "not-an-int"}\n', encoding="utf-8")
        with pytest.raises(ValueError):
            load_run(str(bad), validate=True)

    def test_load_run_accepts_file_objects(self, tensor, tmp_path):
        path = tmp_path / "run.jsonl"
        _run(tensor, fuse=True, preinvert=True, jsonl=str(path))
        with open(path, encoding="utf-8") as fh:
            rec = load_run(fh)
        assert rec.spans and rec.kernels
