"""JsonlSink must be non-fatal: write failures degrade to a null sink."""

import errno
import json

import pytest

from repro.obs import Telemetry
from repro.obs.sinks import JsonlSink, read_jsonl

pytestmark = pytest.mark.telemetry


class FlakyFile:
    """Text-file stand-in whose writes start failing after `ok_writes`."""

    def __init__(self, ok_writes):
        self.ok_writes = ok_writes
        self.writes = 0
        self.lines = []
        self.closed = False
        self.flushes = 0

    def write(self, text):
        self.writes += 1
        if self.writes > self.ok_writes:
            raise OSError(errno.ENOSPC, "No space left on device")
        self.lines.append(text)

    def flush(self):
        self.flushes += 1

    def close(self):
        self.closed = True


class TestSinkDegrade:
    def test_emit_never_propagates_oserror(self):
        fh = FlakyFile(ok_writes=2)
        sink = JsonlSink(fh)
        sink.emit({"a": 1})
        sink.emit({"a": 2})
        sink.emit({"a": 3})  # first failure: must not raise
        sink.emit({"a": 4})  # already degraded: null-sink path
        assert sink.degraded
        assert sink.lines_written == 2
        assert sink.dropped == 2
        # Lines written before the failure stayed intact JSONL.
        assert [json.loads(line) for line in fh.lines] == [{"a": 1}, {"a": 2}]

    def test_degraded_sink_survives_flush_and_close(self):
        sink = JsonlSink(FlakyFile(ok_writes=0))
        sink.emit({"a": 1})
        assert sink.degraded
        sink.flush()
        sink.close()
        sink.emit({"a": 2})
        assert sink.dropped == 2

    def test_flush_failure_degrades(self):
        fh = FlakyFile(ok_writes=100)
        fh.flush = lambda: (_ for _ in ()).throw(OSError(errno.ENOSPC, "full"))
        sink = JsonlSink(fh)
        sink.emit({"a": 1})
        sink.flush()
        assert sink.degraded

    def test_fail_next_write_arm_is_one_shot(self):
        fh = FlakyFile(ok_writes=100)
        sink = JsonlSink(fh)
        sink.fail_next_write = True
        sink.emit({"a": 1})
        assert sink.degraded and sink.dropped == 1
        assert not sink.fail_next_write


class TestTelemetryWithDegradedSink:
    def test_run_survives_and_counts_dropped_lines(self):
        fh = FlakyFile(ok_writes=3)
        tel = Telemetry(jsonl_path=fh)  # meta line consumes one write
        with tel.span("outer"):
            tel.counter("work.units", 2.0)
            for i in range(5):
                tel.gauge("pressure", float(i))
        tel.close()
        summary = tel.record.metrics_summary
        dropped = summary["counters"]["obs.sink.dropped"]
        assert dropped >= 5  # gauges past the failure + span + summary lines
        # Everything that made it out before the failure is parseable.
        records = [json.loads(line) for line in fh.lines]
        assert records[0]["type"] == "meta"
        assert len(records) == 3
        # The in-memory record is complete regardless of the dead sink.
        assert summary["counters"]["work.units"] == 2.0
        assert len(tel.record.spans_named("outer")) == 1

    def test_inject_sink_failure_arms_disk_full_path(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = Telemetry(jsonl_path=str(path))
        tel.counter("before", 1.0)
        tel.inject_sink_failure()
        tel.counter("after", 1.0)  # this line dies; run continues
        tel.counter("after", 1.0)
        tel.close()
        summary = tel.record.metrics_summary
        assert summary["counters"]["obs.sink.dropped"] >= 2
        assert summary["counters"]["after"] == 2.0
        records = read_jsonl(path)
        names = [r.get("name") for r in records if r.get("type") == "metric"]
        assert "before" in names and "after" not in names

    def test_healthy_sink_reports_no_drops(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tel = Telemetry(jsonl_path=str(path))
        tel.counter("work.units")
        tel.close()
        assert "obs.sink.dropped" not in tel.record.metrics_summary["counters"]
        assert read_jsonl(path)[-1]["type"] == "summary"
