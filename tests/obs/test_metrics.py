"""Metrics registry: counters, gauges, histogram summaries, checkpoint state."""

import pytest

from repro.obs.metrics import MAX_SAMPLES, Histogram, MetricsRegistry

pytestmark = pytest.mark.telemetry


class TestHistogram:
    def test_observe_tracks_exact_aggregates(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_summary_is_zeroed(self):
        s = Histogram().summary()
        assert s == {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                     "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) in (50.0, 51.0)  # nearest-rank, 0-indexed
        assert h.percentile(90) == 90.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_sample_cap_keeps_aggregates_exact(self):
        h = Histogram()
        for v in range(MAX_SAMPLES + 10):
            h.observe(float(v))
        assert h.count == MAX_SAMPLES + 10
        assert len(h.values) == MAX_SAMPLES
        assert h.max == float(MAX_SAMPLES + 9)

    def test_state_roundtrip(self):
        h = Histogram()
        for v in (2.0, 8.0, 4.0):
            h.observe(v)
        clone = Histogram.from_state(h.state_dict())
        assert clone.summary() == h.summary()
        clone.observe(100.0)
        assert clone.count == 4
        assert clone.max == 100.0

    def test_percentile_on_empty_histogram_never_raises(self):
        h = Histogram()
        for p in (0, 50, 90, 99, 100):
            assert h.percentile(p) == 0.0
        # and the sentinel min/max (inf/-inf) never leak into the summary
        s = h.summary()
        assert s["count"] == 0
        assert all(v == 0.0 for k, v in s.items() if k != "count")

    def test_retention_boundary_exact_at_cap(self, monkeypatch):
        monkeypatch.setattr("repro.obs.metrics.MAX_SAMPLES", 100)
        h = Histogram()
        for v in range(100):  # exactly at the cap: everything retained
            h.observe(float(v))
        assert len(h.values) == 100
        assert h.percentile(100) == 99.0
        h.observe(100.0)  # first sample past the cap: dropped from retention
        assert len(h.values) == 100
        assert h.count == 101
        assert h.max == 100.0  # aggregates stay exact

    def test_percentiles_come_from_retained_prefix_past_cap(self, monkeypatch):
        monkeypatch.setattr("repro.obs.metrics.MAX_SAMPLES", 100)
        h = Histogram()
        for v in range(200):  # second half never enters the sample buffer
            h.observe(float(v))
        assert h.percentile(100) == 99.0  # prefix percentile, not global 199
        s = h.summary()
        assert s["max"] == 199.0 and s["count"] == 200  # exact aggregates
        assert s["p99"] <= 99.0  # documented retained-prefix approximation


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.count("calls")
        reg.count("calls", 2.0)
        assert reg.counters["calls"] == 3.0

    def test_gauge_last_value_wins(self):
        reg = MetricsRegistry()
        reg.gauge("fit", 0.1)
        reg.gauge("fit", 0.9)
        assert reg.gauges["fit"] == 0.9

    def test_observe_creates_histogram(self):
        reg = MetricsRegistry()
        reg.observe("iters", 10)
        reg.observe("iters", 20)
        assert reg.histogram("iters").count == 2
        assert reg.histogram("missing") is None

    def test_summary_shape(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.gauge("g", 1.5)
        reg.observe("h", 2.0)
        s = reg.summary()
        assert s["counters"] == {"c": 1.0}
        assert s["gauges"] == {"g": 1.5}
        assert s["histograms"]["h"]["count"] == 1

    def test_state_roundtrip_continues_without_gap(self):
        reg = MetricsRegistry()
        reg.count("outer", 5)
        reg.gauge("fit", 0.7)
        for v in (1.0, 2.0):
            reg.observe("inner", v)

        resumed = MetricsRegistry()
        resumed.load_state(reg.state_dict())
        resumed.count("outer", 1)
        resumed.observe("inner", 3.0)
        assert resumed.counters["outer"] == 6.0
        assert resumed.gauges["fit"] == 0.7
        assert resumed.histogram("inner").count == 3
        assert resumed.histogram("inner").total == 6.0

    def test_load_state_none_is_noop(self):
        reg = MetricsRegistry()
        reg.count("kept")
        reg.load_state(None)
        assert reg.counters == {"kept": 1.0}
