"""The live run monitor: incremental JSONL tailing, panel aggregation,
and the guarantee that watching a run never perturbs it.
"""

import io
import json

import pytest

from repro.obs import JsonlTail, RunMonitor
from repro.obs.watch import sparkline, watch_run

pytestmark = pytest.mark.telemetry


def _line(obj) -> bytes:
    return (json.dumps(obj) + "\n").encode()


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert len(sparkline([1.0, 1.0, 1.0])) == 3

    def test_rising_series_rises(self):
        s = sparkline([0.0, 0.5, 1.0])
        assert s[0] < s[-1]

    def test_window(self):
        assert len(sparkline(range(100), width=8)) == 8


class TestJsonlTail:
    def test_missing_file_yields_nothing(self, tmp_path):
        assert JsonlTail(tmp_path / "absent.jsonl").poll() == []

    def test_incremental_polls(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(_line({"a": 1}))
        tail = JsonlTail(path)
        assert tail.poll() == [{"a": 1}]
        assert tail.poll() == []
        with open(path, "ab") as fh:
            fh.write(_line({"b": 2}))
        assert tail.poll() == [{"b": 2}]

    def test_partial_trailing_line_carried(self, tmp_path):
        path = tmp_path / "run.jsonl"
        whole = _line({"x": 1})
        path.write_bytes(whole[:5])  # writer caught mid-write
        tail = JsonlTail(path)
        assert tail.poll() == []
        with open(path, "ab") as fh:
            fh.write(whole[5:])
        assert tail.poll() == [{"x": 1}]

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(b"not json\n" + _line({"ok": True}) + b"\n")
        assert JsonlTail(path).poll() == [{"ok": True}]

    def test_tailing_never_modifies_the_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        payload = _line({"a": 1}) + _line({"b": 2})
        path.write_bytes(payload)
        before = path.stat().st_mtime_ns
        tail = JsonlTail(path)
        tail.poll()
        tail.poll()
        assert path.read_bytes() == payload
        assert path.stat().st_mtime_ns == before


def _feed_monitor():
    mon = RunMonitor(title="demo")
    mon.feed([
        {"type": "meta", "version": 2, "run": {}},
        {"type": "span", "id": 0, "parent": None, "name": "shard",
         "ts": 0.0, "dur": 0.01, "attrs": {"shard": 0, "nnz": 500}},
        {"type": "span", "id": 1, "parent": 0, "name": "shard_kernel",
         "ts": 0.0, "dur": 0.008, "attrs": {"shard": 0},
         "worker": {"pid": 321, "id": 0}},
        {"type": "span", "id": 2, "parent": None, "name": "shard",
         "ts": 0.0, "dur": 0.02,
         "attrs": {"shard": 1, "nnz": 400, "redone": True}},
        {"type": "metric", "kind": "counter", "name": "engine.store.hits",
         "value": 3.0, "ts": 0.1},
        {"type": "metric", "kind": "counter", "name": "engine.store.misses",
         "value": 1.0, "ts": 0.1},
        {"type": "metric", "kind": "counter", "name": "obs.overhead.batches",
         "value": 2.0, "ts": 0.1},
        {"type": "metric", "kind": "histogram", "name": "cstf.fit",
         "value": 0.61, "ts": 0.2},
        {"type": "metric", "kind": "histogram", "name": "cstf.fit",
         "value": 0.72, "ts": 0.3},
        {"type": "event", "kind": "worker_lost", "phase": "EXECUTE",
         "ts": 0.2, "mode": 0, "iteration": 1, "detail": "", "data": {}},
    ])
    return mon


class TestRunMonitor:
    def test_aggregation(self):
        mon = _feed_monitor()
        assert mon.version == 2
        assert mon.records == 10
        assert not mon.finished
        assert mon.shards[0]["runs"] == 1 and mon.shards[0]["redone"] == 0
        assert mon.shards[1]["redone"] == 1
        assert mon.worker_pids == {0: 321}
        assert mon.kernel_spans == 1
        assert mon.fit_trajectory == [0.61, 0.72]
        assert mon.events == {"worker_lost": 1}
        assert mon.counters["engine.store.hits"] == 3.0

    def test_summary_line_finishes(self):
        mon = RunMonitor()
        mon.feed([{"type": "summary", "metrics": {}}])
        assert mon.finished

    def test_render_panel(self):
        panel = _feed_monitor().render()
        assert "demo" in panel and "schema v2" in panel and "live" in panel
        assert "fit      0.720000" in panel
        assert "shard 0" in panel and "shard 1" in panel
        assert "redone=1" in panel
        assert "pids=[321]" in panel
        assert "worker_lost=1" in panel
        assert "hits=3" in panel and "(75% hit)" in panel
        assert "overhead batches=2" in panel

    def test_render_empty_stream(self):
        assert "0 records" in RunMonitor().render()

    def test_non_dict_records_ignored(self):
        mon = RunMonitor()
        mon.feed(["junk", 42, None])
        assert mon.records == 0


class TestWatchRun:
    def test_once_renders_and_returns(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "wb") as fh:
            fh.write(_line({"type": "meta", "version": 2, "run": {}}))
            fh.write(_line({"type": "summary", "metrics": {}}))
        buf = io.StringIO()
        mon = watch_run(path, once=True, out=buf)
        assert mon.finished
        assert "finished" in buf.getvalue()
        assert "\x1b[2J" not in buf.getvalue()  # --once never clears

    def test_exits_on_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(_line({"type": "summary", "metrics": {}}))
        buf = io.StringIO()
        mon = watch_run(path, interval=0.01, out=buf)
        assert mon.finished
        assert "\x1b[2J" in buf.getvalue()  # live mode clears in place

    def test_duration_budget_expires(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_bytes(_line({"type": "meta", "version": 2, "run": {}}))
        mon = watch_run(path, interval=0.01, duration=0.05, out=io.StringIO())
        assert not mon.finished

    def test_watching_does_not_modify_the_stream(self, tmp_path):
        path = tmp_path / "run.jsonl"
        payload = (
            _line({"type": "meta", "version": 2, "run": {}})
            + _line({"type": "summary", "metrics": {}})
        )
        path.write_bytes(payload)
        watch_run(path, once=True, out=io.StringIO())
        assert path.read_bytes() == payload
