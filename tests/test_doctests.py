"""Docstring examples must actually run (README/API credibility check)."""

import doctest

import pytest

import repro
import repro.machine.traceviz as traceviz
import repro.utils.timing as timing


@pytest.mark.parametrize(
    "module", [repro, traceviz, timing], ids=lambda m: m.__name__
)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} should carry runnable examples"
    assert result.failed == 0
