"""Heterogeneous execution runner."""

import pytest

from repro.core.trace import PHASE_MTTKRP
from repro.data.frostt import get_dataset
from repro.scheduler.decision import plan_execution
from repro.scheduler.hybrid import run_planned
from repro.tensor.synthetic import planted_sparse_cp


class TestPureStrategies:
    def test_gpu_plan_runs_on_gpu(self):
        stats = get_dataset("delicious").stats()
        res = run_planned(stats, rank=32)
        assert res.plan.strategy == "gpu"
        assert res.transfer_seconds == 0.0
        assert res.result.executor.device.kind == "gpu"

    def test_concrete_tensor_produces_factors(self):
        tensor, _ = planted_sparse_cp((20, 16, 12), rank=3, seed=0)
        res = run_planned(tensor, rank=3, max_iters=5)
        assert res.result.kruskal is not None
        assert res.total_seconds > 0


class TestHeterogeneous:
    @pytest.fixture(scope="class")
    def vast_run(self):
        stats = get_dataset("vast").stats()
        return run_planned(stats, rank=32)

    def test_vast_runs_hybrid(self, vast_run):
        assert vast_run.plan.strategy == "het:mttkrp=cpu"
        assert vast_run.transfer_seconds > 0

    def test_hybrid_beats_pure_gpu(self, vast_run):
        assert vast_run.total_seconds < vast_run.plan.alternatives["gpu"]

    def test_executed_matches_prediction(self, vast_run):
        """The planner and the executed hybrid use the same cost model, so
        the prediction must match the execution closely."""
        assert vast_run.total_seconds == pytest.approx(
            vast_run.plan.predicted_seconds, rel=0.05
        )

    def test_mttkrp_phase_is_cpu_priced(self, vast_run):
        """The hybrid's MTTKRP phase must cost what the CPU charges, not
        the contention-poisoned GPU price."""
        gpu_only = run_planned(
            get_dataset("vast").stats(), rank=32,
            plan=_force("gpu"),
        )
        assert vast_run.phase_seconds[PHASE_MTTKRP] < gpu_only.phase_seconds[PHASE_MTTKRP]


def _force(strategy):
    stats = get_dataset("vast").stats()
    plan = plan_execution(stats, rank=32)
    # Rebuild a plan object pinned to the requested strategy.
    from dataclasses import replace

    return replace(
        plan,
        strategy=strategy,
        placement={k: "forced" for k in plan.placement},
        predicted_seconds=plan.alternatives[strategy],
    )


class TestForcedStrategies:
    def test_forcing_cpu_runs_cpu(self):
        stats = get_dataset("uber").stats()
        res = run_planned(stats, rank=32, plan=_force("cpu"))
        assert res.result.executor.device.kind == "cpu"
