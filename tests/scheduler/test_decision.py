"""The CPU/GPU/heterogeneous decision model (paper Section 7 future work)."""

import pytest

from repro.core.trace import PHASE_MTTKRP, PHASE_UPDATE, PHASES
from repro.data.frostt import get_dataset
from repro.machine.analytic import TensorStats
from repro.scheduler.decision import (
    ExecutionPlan,
    TransferModel,
    estimate_phases,
    plan_execution,
)


class TestTransferModel:
    def test_zero_words_free(self):
        assert TransferModel().seconds(0) == 0.0

    def test_latency_floor(self):
        tm = TransferModel(bandwidth=25e9, latency=1e-5)
        assert tm.seconds(1) >= 1e-5

    def test_scales_with_volume(self):
        tm = TransferModel()
        assert tm.seconds(10**9) > 100 * tm.seconds(10**6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TransferModel().seconds(-1)


class TestEstimatePhases:
    @pytest.fixture(scope="class")
    def stats(self):
        return get_dataset("enron").stats()

    def test_device_defaults(self, stats):
        gpu = estimate_phases(stats, 32, "a100")
        cpu = estimate_phases(stats, 32, "cpu")
        assert gpu.update == "cuadmm" and gpu.mttkrp_format == "blco"
        assert cpu.update == "admm" and cpu.mttkrp_format == "csf"

    def test_all_phases_present(self, stats):
        est = estimate_phases(stats, 32, "a100")
        assert set(est.seconds) == set(PHASES)
        assert all(v > 0 for v in est.seconds.values())

    def test_total_is_sum(self, stats):
        est = estimate_phases(stats, 32, "cpu")
        assert est.total == pytest.approx(sum(est.seconds.values()))

    def test_override_configuration(self, stats):
        est = estimate_phases(stats, 32, "a100", update="mu", mttkrp_format="coo")
        assert est.update == "mu"
        assert est.mttkrp_format == "coo"


class TestPlanExecution:
    def test_large_tensors_choose_gpu(self):
        for name in ("flickr", "delicious", "nell1", "amazon"):
            plan = plan_execution(get_dataset(name).stats(), rank=32)
            assert plan.strategy == "gpu", name
            assert not plan.is_heterogeneous
            assert plan.transfer_seconds == 0.0

    def test_vast_chooses_heterogeneous(self):
        """VAST's length-2 mode poisons the GPU MTTKRP with atomic
        contention; the planner should route MTTKRP to the CPU and keep the
        bandwidth-hungry update on the GPU."""
        plan = plan_execution(get_dataset("vast").stats(), rank=32)
        assert plan.strategy == "het:mttkrp=cpu"
        assert plan.placement[PHASE_MTTKRP] != plan.placement[PHASE_UPDATE]
        assert plan.advantage() > 1.2
        assert plan.transfer_seconds > 0.0

    def test_alternatives_complete_and_consistent(self):
        plan = plan_execution(get_dataset("nips").stats(), rank=32)
        assert set(plan.alternatives) == {"cpu", "gpu", "het:mttkrp=cpu", "het:update=cpu"}
        assert plan.predicted_seconds == min(plan.alternatives.values())

    def test_pure_strategies_have_uniform_placement(self):
        plan = plan_execution(get_dataset("nell2").stats(), rank=32)
        if not plan.is_heterogeneous:
            assert len(set(plan.placement.values())) == 1

    def test_advantage_never_below_one(self):
        """The planner always has the pure strategies available, so it can
        never choose something slower than both."""
        for name in ("uber", "vast", "enron"):
            plan = plan_execution(get_dataset(name).stats(), rank=32)
            assert plan.advantage() >= 1.0 - 1e-12, name

    def test_expensive_interconnect_disables_hybrid(self):
        """With a very slow link, shipping M/H every mode can't pay off."""
        slow = TransferModel(bandwidth=1e6, latency=1e-3)
        plan = plan_execution(get_dataset("vast").stats(), rank=32, transfer=slow)
        assert not plan.is_heterogeneous

    def test_plan_is_dataclass_with_fields(self):
        plan = plan_execution(TensorStats.from_dims((100, 80, 60), 5000), rank=8)
        assert isinstance(plan, ExecutionPlan)
        assert plan.predicted_seconds > 0


class TestHostShards:
    """The engine's sharded CPU MTTKRP path as seen by the planner."""

    @pytest.fixture(scope="class")
    def stats(self):
        return get_dataset("uber").stats()

    def test_default_reproduces_serial_decision(self, stats):
        assert plan_execution(stats, rank=32, host_shards=1) == plan_execution(
            stats, rank=32
        )

    def test_shards_speed_up_only_cpu_mttkrp_candidates(self, stats):
        serial = plan_execution(stats, rank=32)
        sharded = plan_execution(stats, rank=32, host_shards=4)
        assert sharded.host_shards == 4
        assert sharded.alternatives["gpu"] == serial.alternatives["gpu"]
        assert (
            sharded.alternatives["het:update=cpu"]
            == serial.alternatives["het:update=cpu"]
        )
        assert sharded.alternatives["cpu"] < serial.alternatives["cpu"]
        assert (
            sharded.alternatives["het:mttkrp=cpu"]
            < serial.alternatives["het:mttkrp=cpu"]
        )

    def test_discounted_linear_scaling(self, stats):
        cpu_mttkrp = estimate_phases(stats, 32, "cpu").seconds[PHASE_MTTKRP]
        serial = plan_execution(stats, rank=32)
        sharded = plan_execution(stats, rank=32, host_shards=4, shard_efficiency=1.0)
        saved = (
            serial.alternatives["het:mttkrp=cpu"]
            - sharded.alternatives["het:mttkrp=cpu"]
        )
        assert saved == pytest.approx(cpu_mttkrp * (1 - 1 / 4))

    def test_invalid_arguments_rejected(self, stats):
        with pytest.raises(ValueError):
            plan_execution(stats, rank=8, host_shards=0)
        with pytest.raises(ValueError):
            plan_execution(stats, rank=8, shard_efficiency=0.0)
        with pytest.raises(ValueError):
            plan_execution(stats, rank=8, shard_efficiency=1.5)
