"""Engine-enabled cSTF runs: bit-identity with the seed driver, plan-cache
hit rates, telemetry counters, simulated-cost invariance, gram rescale."""

import numpy as np
import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.core.trace import PHASES
from repro.engine import get_plan_cache
from repro.tensor.synthetic import random_sparse


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((40, 25, 15), nnz=2500, seed=7)


def _run(tensor, engine, fmt="coo", iters=6, telemetry="off", **kwargs):
    return cstf(
        tensor,
        CstfConfig(
            rank=6, max_iters=iters, update="cuadmm", device="a100",
            mttkrp_format=fmt, compute_fit=True, seed=1, telemetry=telemetry,
            engine=engine, **kwargs,
        ),
    )


def _assert_bit_equal(a, b):
    assert np.array_equal(a.kruskal.weights, b.kruskal.weights)
    for fa, fb in zip(a.kruskal.factors, b.kruskal.factors):
        assert np.array_equal(fa, fb)
    assert a.fits == b.fits


class TestBitIdentity:
    @pytest.mark.parametrize("fmt", ["coo", "alto", "blco", "csf"])
    def test_engine_matches_seed_per_format(self, tensor, fmt):
        _assert_bit_equal(_run(tensor, None, fmt), _run(tensor, "on", fmt))

    @pytest.mark.parametrize("fmt", ["coo", "alto"])
    def test_sharded_matches_seed(self, tensor, fmt):
        seed = _run(tensor, None, fmt)
        sharded = _run(tensor, {"shards": 3, "chunk": 512}, fmt)
        _assert_bit_equal(seed, sharded)

    def test_simulated_timeline_unchanged(self, tensor):
        seed = _run(tensor, None)
        engine = _run(tensor, "on")
        for phase in PHASES:
            assert engine.timeline.seconds(phase) == seed.timeline.seconds(phase)


class TestPlanCacheBehavior:
    def test_hit_rate_after_first_iteration(self, tensor):
        """Acceptance: >= 90% plan-cache hit rate once the first AO
        iteration has populated the cache (one miss per mode)."""
        get_plan_cache().clear()
        result = _run(tensor, "on", iters=10, telemetry="on")
        counters = result.telemetry.metrics_summary["counters"]
        hits = counters["engine.plan.hits"]
        misses = counters["engine.plan.misses"]
        assert misses == tensor.ndim  # one per mode, first iteration only
        assert hits / (hits + misses) >= 0.9

    def test_global_cache_reused_across_runs(self, tensor):
        get_plan_cache().clear()
        _run(tensor, "on", iters=2)
        before = get_plan_cache().misses
        _run(tensor, "on", iters=2)  # same tensor object → all hits
        assert get_plan_cache().misses == before

    def test_counters_flow_through_telemetry(self, tensor):
        get_plan_cache().clear()
        result = _run(tensor, "on", iters=3, telemetry="on")
        counters = result.telemetry.metrics_summary["counters"]
        assert counters["engine.plan.hits"] > 0
        assert counters["engine.plan.misses"] > 0

    def test_shard_gauges_recorded(self, tensor):
        result = _run(tensor, {"shards": 3}, iters=2, telemetry="on")
        gauges = result.telemetry.metrics_summary["gauges"]
        assert gauges["engine.shard.workers"] == 3.0
        assert gauges["engine.shard.imbalance"] >= 1.0


class TestGramRescale:
    def test_requires_l2_normalization(self, tensor):
        with pytest.raises(ValueError, match="gram_rescale"):
            CstfConfig(engine={"gram_rescale": True}, normalize="max")

    def test_numerically_equivalent_not_bitwise_guaranteed(self, tensor):
        seed = _run(tensor, None, normalize="2")
        rescaled = _run(
            tensor, {"gram_rescale": True}, normalize="2", telemetry="on"
        )
        for fa, fb in zip(seed.kruskal.factors, rescaled.kruskal.factors):
            np.testing.assert_allclose(fa, fb, rtol=1e-8, atol=1e-12)
        np.testing.assert_allclose(
            seed.kruskal.weights, rescaled.kruskal.weights, rtol=1e-8
        )
        counters = rescaled.telemetry.metrics_summary["counters"]
        assert counters["engine.gram.rescales"] > 0

    def test_disabled_under_fault_injection(self, tensor):
        from repro.resilience.faults import FaultInjector, FaultSpec

        injector = FaultInjector(
            [FaultSpec(phase="UPDATE", kind="nan", probability=0.0)], seed=0
        )
        result = cstf(
            tensor,
            CstfConfig(
                rank=4, max_iters=2, update="cuadmm", mttkrp_format="coo",
                normalize="2", engine={"gram_rescale": True}, telemetry="on",
                fault_injector=injector, compute_fit=False, seed=2,
            ),
        )
        counters = result.telemetry.metrics_summary["counters"]
        assert counters.get("engine.gram.rescales", 0) == 0


class TestConfigPlumbing:
    def test_engine_setting_normalized_on_config(self):
        cfg = CstfConfig(engine="sharded")
        assert cfg.engine is not None and cfg.engine.shards >= 2
        assert CstfConfig(engine=None).engine is None
        assert CstfConfig(engine="off").engine is None

    def test_invalid_engine_setting_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            CstfConfig(engine="warp-speed")

    def test_analytic_runs_ignore_engine(self):
        from repro.machine.analytic import TensorStats

        stats = TensorStats.from_dims((50, 40, 30), 4000)
        result = cstf(stats, CstfConfig(rank=4, max_iters=2, engine="on",
                                        compute_fit=False))
        assert result.kruskal is None
