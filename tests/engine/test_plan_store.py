"""The crash-safe on-disk plan store: content-keyed round trips, checksum
validation with quarantine-and-replan, and the PlanCache store tier that
lets a fresh process (or a fresh cache) skip preprocessing entirely.
"""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    PlanCache,
    PlanStore,
    engine_mttkrp,
    store_key,
)
from repro.engine.plan import MttkrpPlan, _content_hash
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.obs import telemetry_session
from repro.resilience import EventLog
from repro.tensor.synthetic import random_sparse


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((28, 22, 16), nnz=1100, seed=9)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(2)
    return [rng.random((d, 4)) for d in tensor.shape]


def _plan(tensor, mode=0):
    return MttkrpPlan.from_arrays(tensor.indices, tensor.values, tensor.shape, mode)


def _key(tensor, mode=0, fmt="coo"):
    return store_key(_content_hash(tensor), fmt, mode)


class TestStoreKey:
    def test_deterministic_and_mode_qualified(self, tensor):
        assert _key(tensor, 0) == _key(tensor, 0)
        assert _key(tensor, 0) != _key(tensor, 1)
        assert _key(tensor, 0, "coo") != _key(tensor, 0, "alto")
        assert _key(tensor, 0).endswith("-coo-m0")

    def test_content_addressed(self, tensor):
        """An equal copy in another process derives the same key — the
        property the process backend's plan_ref shipping relies on."""
        twin = random_sparse((28, 22, 16), nnz=1100, seed=9)
        assert _key(twin) == _key(tensor)


class TestRoundTrip:
    def test_save_load_bit_identical(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        plan = _plan(tensor, mode=1)
        key = _key(tensor, 1)
        store.save(key, plan)
        assert key in store
        assert store.keys() == [key]
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.mode == plan.mode
        assert loaded.out_rows == plan.out_rows
        assert loaded.store_key == key
        assert np.array_equal(loaded.stream.values, plan.stream.values)
        assert np.array_equal(loaded.stream.starts, plan.stream.starts)
        assert np.array_equal(loaded.stream.out_index, plan.stream.out_index)
        for a, b in zip(loaded.stream.cols, plan.stream.cols):
            assert np.array_equal(a, b)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 0
        assert stats["writes"] == 1
        assert stats["quarantined"] == 0
        assert stats["evictions"] == 0
        assert stats["max_bytes"] is None
        assert stats["bytes"] > 0

    def test_no_tmp_debris_after_save(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        store.save(_key(tensor), _plan(tensor))
        assert list(tmp_path.glob("*.tmp")) == []

    def test_missing_key_is_a_counted_miss(self, tmp_path):
        store = PlanStore(tmp_path)
        with telemetry_session() as tel:
            assert store.load("nope-coo-m0") is None
        assert store.misses == 1
        assert tel.metrics.summary()["counters"]["engine.store.misses"] == 1

    def test_empty_store(self, tmp_path):
        store = PlanStore(tmp_path / "never-created")
        assert len(store) == 0
        assert store.keys() == []


class TestQuarantine:
    def test_corrupt_entry_quarantined_with_event(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        key = _key(tensor)
        store.save(key, _plan(tensor))
        assert store.corrupt(key)
        events = EventLog()
        with telemetry_session() as tel:
            assert store.load(key, events=events) is None
        assert store.quarantined == 1
        assert key not in store
        assert (tmp_path / f"{key}.quarantine").exists()
        (ev,) = events.of_kind("plan_repaired")
        assert ev.phase == "STORE"
        assert key in ev.detail
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.store.quarantined"] == 1

    def test_corrupt_missing_key_is_noop(self, tmp_path):
        assert not PlanStore(tmp_path).corrupt("absent-coo-m0")

    def test_garbage_file_quarantined(self, tmp_path):
        store = PlanStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        store.path("junk-coo-m0").write_bytes(b"this is not an npz archive")
        assert store.load("junk-coo-m0") is None
        assert store.quarantined == 1

    def test_save_republishes_quarantined_key(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        key = _key(tensor)
        store.save(key, _plan(tensor))
        store.corrupt(key)
        assert store.load(key) is None
        store.save(key, _plan(tensor))
        assert store.load(key) is not None


class TestSizeBudget:
    def _entry_size(self, tensor, tmp_path):
        probe = PlanStore(tmp_path / "probe")
        path = probe.save(_key(tensor, 0), _plan(tensor, 0))
        return path.stat().st_size

    def test_unbounded_by_default(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        for mode in range(tensor.ndim):
            store.save(_key(tensor, mode), _plan(tensor, mode))
        assert len(store) == tensor.ndim
        assert store.evictions == 0

    def test_lru_eviction_keeps_recently_used(self, tensor, tmp_path):
        import os
        import time

        size = self._entry_size(tensor, tmp_path)
        # Budget for two entries; saving a third must evict exactly one.
        store = PlanStore(tmp_path / "store", max_bytes=int(size * 2.5))
        store.save(_key(tensor, 0), _plan(tensor, 0))
        time.sleep(0.01)
        store.save(_key(tensor, 1), _plan(tensor, 1))
        # Touch mode 0 so mode 1 becomes the LRU victim.
        past = time.time() - 60
        os.utime(store.path(_key(tensor, 1)), (past, past))
        assert store.load(_key(tensor, 0)) is not None
        with telemetry_session() as tel:
            store.save(_key(tensor, 2), _plan(tensor, 2))
        assert store.evictions == 1
        assert _key(tensor, 1) not in store  # LRU victim
        assert _key(tensor, 0) in store  # recently loaded, survives
        assert _key(tensor, 2) in store  # just written, never evicted
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.store.evictions"] == 1

    def test_repeatedly_hit_entry_survives_eviction_pressure(
        self, tensor, tmp_path
    ):
        """Regression: eviction ranked entries by *write* mtime only, so a
        hot entry that was merely loaded (never re-saved) aged like a cold
        one — FIFO masquerading as LRU. Hits now refresh recency."""
        import os
        import time

        size = self._entry_size(tensor, tmp_path)
        store = PlanStore(tmp_path / "store", max_bytes=int(size * 2.5))
        store.save(_key(tensor, 0), _plan(tensor, 0))  # written first
        store.save(_key(tensor, 1), _plan(tensor, 1))  # written second
        # Age both entries, mode 0 more: under write-order (FIFO) eviction
        # mode 0 is the victim no matter how often it is hit.
        now = time.time()
        os.utime(store.path(_key(tensor, 0)), (now - 120, now - 120))
        os.utime(store.path(_key(tensor, 1)), (now - 60, now - 60))
        for _ in range(3):
            assert store.load(_key(tensor, 0)) is not None  # hot entry
        store.save(_key(tensor, 2), _plan(tensor, 2))
        assert store.evictions == 1
        assert _key(tensor, 0) in store  # repeatedly hit: survives
        assert _key(tensor, 1) not in store  # never hit: the true LRU victim
        assert _key(tensor, 2) in store

    def test_touch_refreshes_recency_without_counting_a_hit(
        self, tensor, tmp_path
    ):
        import os
        import time

        store = PlanStore(tmp_path)
        key = _key(tensor, 0)
        store.save(key, _plan(tensor, 0))
        past = time.time() - 120
        os.utime(store.path(key), (past, past))
        hits_before = store.hits
        store.touch(key)
        assert store.path(key).stat().st_mtime > past + 60
        assert store.hits == hits_before
        store.touch("absent-coo-m0")  # missing keys are a silent no-op

    def test_just_written_entry_survives_tiny_budget(self, tensor, tmp_path):
        store = PlanStore(tmp_path, max_bytes=1)
        store.save(_key(tensor, 0), _plan(tensor, 0))
        store.save(_key(tensor, 1), _plan(tensor, 1))
        # Each save keeps its own entry but evicts everything else.
        assert store.keys() == [_key(tensor, 1)]
        assert store.evictions == 1

    def test_quarantine_residue_evicted_first(self, tensor, tmp_path):
        size = self._entry_size(tensor, tmp_path)
        store = PlanStore(tmp_path / "store", max_bytes=int(size * 2.5))
        key = _key(tensor, 0)
        store.save(key, _plan(tensor, 0))
        store.corrupt(key)
        assert store.load(key) is None  # quarantined
        quarantine = store.root / f"{key}.quarantine"
        assert quarantine.exists()
        # The next save must reclaim the dead quarantine bytes before
        # touching any live entry.
        store.save(_key(tensor, 1), _plan(tensor, 1))
        store.save(_key(tensor, 2), _plan(tensor, 2))
        assert not quarantine.exists()
        assert _key(tensor, 1) in store and _key(tensor, 2) in store

    def test_stats_reports_budget(self, tensor, tmp_path):
        store = PlanStore(tmp_path, max_bytes=10_000_000)
        store.save(_key(tensor, 0), _plan(tensor, 0))
        stats = store.stats()
        assert stats["max_bytes"] == 10_000_000
        assert 0 < stats["bytes"] <= 10_000_000

    def test_config_threads_budget_to_store(self, tensor, factors, tmp_path):
        cfg = EngineConfig(
            chunk=256, plan_store=tmp_path / "plans", plan_store_bytes=1,
        )
        cache = PlanCache()
        for mode in range(tensor.ndim):
            got = engine_mttkrp(tensor, factors, mode, "coo", cfg, cache)
            assert np.array_equal(got, mttkrp_coo(tensor, factors, mode))
        assert cache.store.max_bytes == 1
        # One-entry budget: every save after the first evicted the previous.
        assert len(cache.store) == 1
        assert cache.store.evictions == tensor.ndim - 1


class TestCacheStoreTier:
    def test_fresh_build_is_persisted(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        cache = PlanCache(store=store)
        plan = cache.plan(tensor, 0)
        assert cache.misses == 1
        assert store.misses == 1  # probed before building
        assert store.writes == 1
        assert plan.store_key == _key(tensor)

    def test_second_cache_loads_instead_of_building(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        PlanCache(store=store).plan(tensor, 0)
        # A fresh cache over an equal tensor (different object, same bytes)
        # must find the persisted plan — the cross-process reuse story.
        twin = random_sparse((28, 22, 16), nnz=1100, seed=9)
        fresh = PlanCache(store=PlanStore(tmp_path))
        plan = fresh.plan(twin, 0)
        assert fresh.store.hits == 1
        assert fresh.store.writes == 0
        assert np.array_equal(plan.stream.values, _plan(tensor).stream.values)

    def test_backfill_on_hit(self, tensor, tmp_path):
        """A plan built before the store was attached is persisted on its
        next hit, converging the disk tier to the in-memory contents."""
        cache = PlanCache()
        plan = cache.plan(tensor, 0)
        assert plan.store_key is None
        cache.store = PlanStore(tmp_path)
        again = cache.plan(tensor, 0)
        assert again is plan
        assert cache.store.writes == 1
        assert plan.store_key == _key(tensor)

    def test_in_memory_hit_refreshes_store_recency(self, tensor, tmp_path):
        """Regression: a plan served from the in-memory cache never touched
        its on-disk entry, so the store's busiest plans looked coldest and
        were evicted first. An in-memory hit now refreshes the entry's
        mtime — without a load and without counting a store hit."""
        import os
        import time

        store = PlanStore(tmp_path)
        cache = PlanCache(store=store)
        cache.plan(tensor, 0)  # miss: built and persisted
        key = _key(tensor, 0)
        past = time.time() - 120
        os.utime(store.path(key), (past, past))
        cache.plan(tensor, 0)  # in-memory hit
        assert store.path(key).stat().st_mtime > past + 60
        assert store.hits == 0  # touched, never re-loaded

    def test_override_arrays_skip_store(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        cache = PlanCache(store=store)
        order = np.argsort(tensor.indices[:, 0], kind="stable")
        cache.plan(
            tensor, 0,
            indices=tensor.indices[order], values=tensor.values[order],
        )
        assert store.writes == 0 and store.misses == 0

    def test_drop_plans_reloads_through_store(self, tensor, tmp_path):
        store = PlanStore(tmp_path)
        cache = PlanCache(store=store)
        cache.plan(tensor, 0)
        assert cache.drop_plans(tensor) == 1
        cache.plan(tensor, 0)
        assert store.hits == 1

    def test_drop_plans_without_entry(self, tensor):
        assert PlanCache().drop_plans(tensor) == 0


class TestDriverIntegration:
    def test_plan_store_config_populates_and_matches_seed(
        self, tensor, factors, tmp_path
    ):
        cfg = EngineConfig(chunk=256, plan_store=tmp_path / "plans")
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_coo(tensor, factors, mode)
            got = engine_mttkrp(tensor, factors, mode, "coo", cfg, cache)
            assert np.array_equal(ref, got)
        assert cache.store is not None
        assert len(cache.store) == tensor.ndim  # one entry per mode
        assert cache.store.writes == tensor.ndim

    def test_second_run_hits_the_disk_tier(self, tensor, factors, tmp_path):
        cfg = EngineConfig(chunk=256, plan_store=tmp_path / "plans")
        engine_mttkrp(tensor, factors, 0, "coo", cfg, PlanCache())
        cache = PlanCache()  # fresh in-memory cache, same store directory
        got = engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        assert cache.store.hits == 1
        assert cache.misses == 0
