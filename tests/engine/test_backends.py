"""The execution-backend seam: registry lifecycle, config plumbing, and
the bitwise-identity contract between the serial and threads backends.

(The ``processes`` backend has its own suite, marked ``procfaults`` and
excluded from tier-1 — see test_process_backend.py.)
"""

import numpy as np
import pytest

from repro.cli import _engine_setting, build_parser
from repro.engine import (
    EngineConfig,
    PlanCache,
    engine_mttkrp,
    get_backend,
    resolve_engine,
    run_shards,
    shutdown_backends,
    shutdown_pools,
)
from repro.engine.backends import BACKEND_NAMES
from repro.engine.backends.base import tree_reduce
from repro.engine.backends.serial import SerialBackend
from repro.engine.backends.threads import ThreadsBackend
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.tensor.synthetic import random_sparse


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((30, 24, 18), nnz=1500, seed=11)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(4)
    return [rng.random((d, 5)) for d in tensor.shape]


class TestRegistry:
    def test_names(self):
        assert BACKEND_NAMES == ("serial", "threads", "processes")

    def test_singletons_per_name(self):
        assert get_backend("serial") is get_backend("serial")
        assert get_backend("threads") is get_backend("threads")
        assert get_backend("serial") is not get_backend("threads")

    def test_instances_match_name(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("threads"), ThreadsBackend)
        assert get_backend("serial").name == "serial"
        assert get_backend("threads").name == "threads"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            get_backend("fibers")

    def test_shutdown_clears_registry(self):
        before = get_backend("threads")
        shutdown_backends()
        after = get_backend("threads")
        assert after is not before
        shutdown_backends()  # idempotent
        shutdown_backends()

    def test_shutdown_pools_alias(self):
        """The historical execute.shutdown_pools name keeps working and is
        safe to call repeatedly."""
        get_backend("threads")
        shutdown_pools()
        shutdown_pools()


class TestConfig:
    def test_backend_validated(self):
        for name in BACKEND_NAMES:
            assert EngineConfig(backend=name).backend == name
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(backend="fibers")

    def test_plan_store_normalized_to_path_string(self, tmp_path):
        cfg = EngineConfig(plan_store=tmp_path / "plans")
        assert cfg.plan_store == str(tmp_path / "plans")
        assert EngineConfig().plan_store is None

    def test_shm_validated_and_normalized(self):
        assert EngineConfig().shm == "auto"
        for value in ("auto", "on", "off"):
            assert EngineConfig(shm=value).shm == value
        # Booleans normalize to the string form.
        assert EngineConfig(shm=True).shm == "on"
        assert EngineConfig(shm=False).shm == "off"
        with pytest.raises(ValueError, match="shm must be one of"):
            EngineConfig(shm="maybe")

    def test_resolve_engine_processes(self):
        cfg = resolve_engine("processes")
        assert cfg.backend == "processes"
        assert cfg.shards > 1

    def test_resolve_engine_dict_with_backend(self, tmp_path):
        cfg = resolve_engine(
            {"shards": 3, "backend": "serial", "plan_store": str(tmp_path)}
        )
        assert cfg.shards == 3
        assert cfg.backend == "serial"
        assert cfg.plan_store == str(tmp_path)


class TestTreeReduce:
    def test_empty_input_rejected(self):
        """An empty shard list has no well-defined shape or dtype; the
        reduce refuses it instead of crashing deep inside pairwise math."""
        with pytest.raises(ValueError, match="at least one shard partial"):
            tree_reduce([])

    def test_single_partial_is_identity(self):
        only = np.arange(6, dtype=np.float64).reshape(2, 3)
        assert np.array_equal(tree_reduce([only]), only)

    def test_sums_all_partials(self):
        partials = [np.full((2, 2), float(i)) for i in range(5)]
        assert np.array_equal(tree_reduce(partials), np.full((2, 2), 10.0))


class TestBitIdentity:
    """Serial and threads dispatch reproduce the seed kernel bit for bit."""

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_engine_matches_seed_all_modes(self, tensor, factors, backend):
        cfg = EngineConfig(shards=3, chunk=256, backend=backend)
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_coo(tensor, factors, mode)
            got = engine_mttkrp(tensor, factors, mode, "coo", cfg, cache)
            assert np.array_equal(ref, got)

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_run_shards_positional_compat(self, tensor, factors, backend):
        """The pre-seam positional run_shards signature still dispatches
        (now through the named backend) and reduces to the seed bits."""
        ref = mttkrp_coo(tensor, factors, 0)
        cfg = EngineConfig(shards=4, backend=backend)
        plan = PlanCache().plan(tensor, 0)
        streams = plan.shard_streams(cfg.shards)
        got = run_shards(
            streams, [np.asarray(f) for f in factors], 0,
            tensor.shape[0], 5, cfg,
        )
        assert np.array_equal(ref, got)

    def test_backends_agree_with_each_other(self, tensor, factors):
        cache = PlanCache()
        results = [
            engine_mttkrp(
                tensor, factors, 1, "coo",
                EngineConfig(shards=3, backend=backend), cache,
            )
            for backend in ("serial", "threads")
        ]
        assert np.array_equal(results[0], results[1])


class TestCliFlags:
    def _args(self, *extra):
        return build_parser().parse_args(
            ["factorize", "x.tns", "--rank", "2", *extra]
        )

    def test_default_is_engine_off(self):
        assert _engine_setting(self._args()) is None

    def test_engine_string_passthrough(self):
        assert _engine_setting(self._args("--engine", "sharded")) == "sharded"
        assert _engine_setting(self._args("--engine", "processes")) == "processes"

    def test_backend_implies_sharded_engine(self):
        setting = _engine_setting(self._args("--backend", "processes"))
        assert setting["backend"] == "processes"
        assert setting["shards"] > 1
        assert resolve_engine(setting).backend == "processes"

    def test_serial_backend_keeps_one_shard(self):
        setting = _engine_setting(self._args("--backend", "serial"))
        assert setting == {"backend": "serial"}

    def test_explicit_shards_win(self):
        setting = _engine_setting(
            self._args("--backend", "threads", "--shards", "2")
        )
        assert setting["shards"] == 2

    def test_plan_store_flag(self, tmp_path):
        setting = _engine_setting(
            self._args("--plan-store", str(tmp_path / "plans"))
        )
        assert setting == {"plan_store": str(tmp_path / "plans")}
        assert resolve_engine(setting).plan_store == str(tmp_path / "plans")

    def test_shm_flag(self):
        setting = _engine_setting(
            self._args("--backend", "processes", "--shm", "off")
        )
        assert setting["shm"] == "off"
        assert resolve_engine(setting).shm == "off"
        # --shm alone also implies the engine (like the other engine flags).
        assert _engine_setting(self._args("--shm", "on")) == {"shm": "on"}

    def test_shm_defaults_to_config_auto(self):
        setting = _engine_setting(self._args("--backend", "processes"))
        assert "shm" not in setting
        assert resolve_engine(setting).shm == "auto"
