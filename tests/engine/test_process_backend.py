"""The process-isolation backend: real worker processes, real SIGKILLs.

Everything here spawns OS processes, so the suite is marked ``procfaults``
and excluded from tier-1 (``addopts = -m "not procfaults"``); it runs via
``scripts/run_fault_suite.py --backend processes`` or an explicit
``-m procfaults``. The invariant under test is the tentpole guarantee:
every recovery path — watchdog-detected worker death, straggler kill,
in-worker exception — produces bits identical to serial execution.
"""

import signal

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    PlanCache,
    engine_mttkrp,
    get_backend,
    shutdown_backends,
)
from repro.engine.backends.processes import ProcessBackend
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.obs import telemetry_session
from repro.resilience import EventLog, FaultInjector, FaultSpec
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.procfaults


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((40, 30, 20), nnz=2500, seed=3)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(1)
    return [rng.random((d, 6)) for d in tensor.shape]


@pytest.fixture(scope="module", autouse=True)
def _reap_workers():
    """Leave no worker processes behind once the module is done."""
    yield
    shutdown_backends()


def _cfg(**overrides):
    kw = dict(shards=3, chunk=256, backend="processes")
    kw.update(overrides)
    return EngineConfig(**kw)


class TestBitIdentity:
    def test_matches_seed_all_modes(self, tensor, factors):
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_coo(tensor, factors, mode)
            got = engine_mttkrp(tensor, factors, mode, "coo", _cfg(), cache)
            assert np.array_equal(ref, got)

    def test_repeated_dispatch_reuses_the_pool(self, tensor, factors):
        backend = get_backend("processes")
        cache = PlanCache()
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), cache)
        pids = [w.proc.pid for w in backend._workers]
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), cache)
        assert [w.proc.pid for w in backend._workers] == pids


class TestKillWorker:
    def test_sigkilled_worker_detected_and_shard_redone(self, tensor, factors):
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=5
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(), PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        lost = events.of_kind("worker_lost")
        assert len(lost) == 1
        # A real SIGKILL death, not a simulated one: the watchdog saw the
        # negative exitcode and named the signal.
        assert lost[0].data["exitcode"] == -signal.SIGKILL
        assert "SIGKILL" in lost[0].detail
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.backend.workers_lost"] == 1
        assert counters["engine.backend.respawns"] >= 1

    def test_pool_recovers_for_the_next_dispatch(self, tensor, factors):
        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=8
        )
        cache = PlanCache()
        events = EventLog()
        engine_mttkrp(
            tensor, factors, 0, "coo", _cfg(), cache,
            faults=inj, events=events,
        )
        assert len(events.of_kind("worker_lost")) == 1
        # The respawned pool serves the next (fault-free) dispatch cleanly.
        got = engine_mttkrp(tensor, factors, 1, "coo", _cfg(), cache)
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 1))
        assert len(events.of_kind("worker_lost")) == 1
        backend = get_backend("processes")
        assert all(w.alive() for w in backend._workers)


class TestInWorkerException:
    def test_crash_reply_redoes_shard_without_killing_worker(
        self, tensor, factors
    ):
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "worker_crash", probability=1.0), seed=4
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(), PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        (retry,) = events.of_kind("shard_retry")
        assert "InjectedWorkerCrash" in retry.detail
        assert events.of_kind("worker_lost") == []
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.shard.retries"] == 1
        assert "engine.backend.workers_lost" not in counters


class TestStraggler:
    def test_straggler_killed_and_shard_redone(self, tensor, factors):
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "slow_shard", probability=1.0, magnitude=0.5),
            seed=2,
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(shard_timeout=0.05),
                PlanCache(), faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        assert len(events.of_kind("shard_timeout")) == 1
        assert tel.metrics.summary()["counters"]["engine.shard.timeouts"] == 1


class TestPlanRefShipping:
    def test_workers_load_plans_from_the_store(self, tensor, factors, tmp_path):
        """With a plan store configured the task carries only the store key;
        workers rebuild their shard stream from the persisted plan."""
        cfg = _cfg(plan_store=tmp_path / "plans")
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_coo(tensor, factors, mode)
            got = engine_mttkrp(tensor, factors, mode, "coo", cfg, cache)
            assert np.array_equal(ref, got)
        assert cache.store is not None and len(cache.store) == tensor.ndim

    def test_store_backed_dispatch_survives_a_kill(self, tensor, factors, tmp_path):
        cfg = _cfg(plan_store=tmp_path / "plans")
        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=6
        )
        events = EventLog()
        got = engine_mttkrp(
            tensor, factors, 0, "coo", cfg, PlanCache(),
            faults=inj, events=events,
        )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        assert len(events.of_kind("worker_lost")) == 1


class TestLifecycle:
    def test_shutdown_stops_workers_and_is_idempotent(self, tensor, factors):
        backend = get_backend("processes")
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
        procs = [w.proc for w in backend._workers]
        assert procs
        backend.shutdown()
        assert backend._workers == []
        backend.shutdown()
        # A later dispatch lazily rebuilds the pool.
        got = engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))

    def test_fresh_backend_instance_is_independent(self, tensor, factors):
        """Direct construction (outside the registry) works and cleans up."""
        backend = ProcessBackend()
        plan = PlanCache().plan(tensor, 0)
        streams = plan.shard_streams(2)
        got = backend.run_shards(
            streams, [np.asarray(f) for f in factors], 0,
            tensor.shape[0], 6, EngineConfig(shards=2, backend="processes"),
        )
        backend.shutdown()
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
