"""The process-isolation backend: real worker processes, real SIGKILLs.

Everything here spawns OS processes, so the suite is marked ``procfaults``
and excluded from tier-1 (``addopts = -m "not procfaults"``); it runs via
``scripts/run_fault_suite.py --backend processes`` or an explicit
``-m procfaults``. The invariant under test is the tentpole guarantee:
every recovery path — watchdog-detected worker death, straggler kill,
in-worker exception — produces bits identical to serial execution.
"""

import multiprocessing
import signal
import threading
import time

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    PlanCache,
    engine_mttkrp,
    get_backend,
    shutdown_backends,
)
from repro.engine.backends.processes import _PLAN_MEMO_LIMIT, ProcessBackend
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.obs import telemetry_session
from repro.resilience import EventLog, FaultInjector, FaultSpec
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.procfaults


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((40, 30, 20), nnz=2500, seed=3)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(1)
    return [rng.random((d, 6)) for d in tensor.shape]


@pytest.fixture(scope="module", autouse=True)
def _reap_workers():
    """Leave no worker processes behind once the module is done."""
    yield
    shutdown_backends()


def _cfg(**overrides):
    kw = dict(shards=3, chunk=256, backend="processes")
    kw.update(overrides)
    return EngineConfig(**kw)


class TestBitIdentity:
    def test_matches_seed_all_modes(self, tensor, factors):
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_coo(tensor, factors, mode)
            got = engine_mttkrp(tensor, factors, mode, "coo", _cfg(), cache)
            assert np.array_equal(ref, got)

    def test_repeated_dispatch_reuses_the_pool(self, tensor, factors):
        backend = get_backend("processes")
        cache = PlanCache()
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), cache)
        pids = [w.proc.pid for w in backend._workers]
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), cache)
        assert [w.proc.pid for w in backend._workers] == pids


class TestKillWorker:
    def test_sigkilled_worker_detected_and_shard_redone(self, tensor, factors):
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=5
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(), PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        lost = events.of_kind("worker_lost")
        assert len(lost) == 1
        # A real SIGKILL death, not a simulated one: the watchdog saw the
        # negative exitcode and named the signal.
        assert lost[0].data["exitcode"] == -signal.SIGKILL
        assert "SIGKILL" in lost[0].detail
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.backend.workers_lost"] == 1
        assert counters["engine.backend.respawns"] >= 1

    def test_pool_recovers_for_the_next_dispatch(self, tensor, factors):
        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=8
        )
        cache = PlanCache()
        events = EventLog()
        engine_mttkrp(
            tensor, factors, 0, "coo", _cfg(), cache,
            faults=inj, events=events,
        )
        assert len(events.of_kind("worker_lost")) == 1
        # The respawned pool serves the next (fault-free) dispatch cleanly.
        got = engine_mttkrp(tensor, factors, 1, "coo", _cfg(), cache)
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 1))
        assert len(events.of_kind("worker_lost")) == 1
        backend = get_backend("processes")
        assert all(w.alive() for w in backend._workers)


class TestInWorkerException:
    def test_crash_reply_redoes_shard_without_killing_worker(
        self, tensor, factors
    ):
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "worker_crash", probability=1.0), seed=4
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(), PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        (retry,) = events.of_kind("shard_retry")
        assert "InjectedWorkerCrash" in retry.detail
        assert events.of_kind("worker_lost") == []
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.shard.retries"] == 1
        assert "engine.backend.workers_lost" not in counters


class TestStraggler:
    def test_straggler_killed_and_shard_redone(self, tensor, factors):
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "slow_shard", probability=1.0, magnitude=0.5),
            seed=2,
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(shard_timeout=0.05),
                PlanCache(), faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        assert len(events.of_kind("shard_timeout")) == 1
        assert tel.metrics.summary()["counters"]["engine.shard.timeouts"] == 1


class TestStragglerDeadlineAnchoring:
    def test_slow_shard_zero_does_not_time_out_shard_one(self, monkeypatch):
        """Regression: shard deadlines used to be anchored at batch launch,
        so the time the watchdog spent collecting a slow-but-healthy shard 0
        ate shard 1's budget and killed it as a spurious straggler. Each
        deadline is now anchored when *that* shard's collection begins."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so workers inherit the patched kernel")
        shutdown_backends()

        # Mode-0 rows with very different weights, so the two LPT shards
        # have distinguishable nnz (the patched kernel keys its sleep on it).
        rng = np.random.default_rng(17)
        big = np.column_stack(
            [np.zeros(60, dtype=np.int64),
             rng.integers(0, 10, 60), rng.integers(0, 8, 60)]
        )
        small = np.column_stack(
            [np.ones(6, dtype=np.int64),
             rng.integers(0, 10, 6), rng.integers(0, 8, 6)]
        )
        from repro.tensor.coo import SparseTensor

        tensor = SparseTensor(
            np.vstack([big, small]), rng.random(66), (2, 10, 8)
        )
        fmats = [rng.random((d, 4)) for d in tensor.shape]
        ref = mttkrp_coo(tensor, fmats, 0)
        streams = PlanCache().plan(tensor, 0).shard_streams(2)
        assert streams[0].nnz != streams[1].nnz
        # Shard 0 finishes inside its own budget; shard 1 takes longer than
        # one budget from launch but less than one budget from the moment
        # its collection begins (~ when shard 0 delivers).
        sleeps = {streams[0].nnz: 0.9, streams[1].nnz: 2.0}

        import repro.engine.execute as execute_mod

        real_run_stream = execute_mod.run_stream

        def sleepy_run_stream(stream, mats, mode, out, chunk):
            time.sleep(sleeps.get(stream.nnz, 0.0))
            return real_run_stream(stream, mats, mode, out, chunk)

        # Patched before the pool forks, so workers inherit the slow kernel.
        monkeypatch.setattr(execute_mod, "run_stream", sleepy_run_stream)
        backend = ProcessBackend()
        events = EventLog()
        try:
            got = backend.run_shards(
                streams, [np.asarray(f) for f in fmats], 0,
                tensor.shape[0], 4,
                EngineConfig(shards=2, backend="processes", shard_timeout=1.5),
                events=events,
            )
        finally:
            backend.shutdown()
        assert np.array_equal(ref, got)
        assert events.of_kind("shard_timeout") == []
        assert events.of_kind("worker_lost") == []


class TestBrokenPipe:
    class _WedgeShardZero:
        """Fault stub: shard 0 sleeps far longer than the test tolerates."""

        def draw_shard_faults(self, n_shards, *, mode=None, events=None):
            return {"slow_shard": 0}

        def slow_shard_delay(self):
            return 5.0

    def test_dead_pipe_with_live_worker_is_a_lost_worker(
        self, tensor, factors
    ):
        """Regression: a broken task pipe whose worker process was still
        alive used to poll forever under ``shard_timeout=0`` (liveness
        checks pass, the reply can never arrive). A dead pipe is now
        treated as a lost worker immediately: record, respawn, redo."""
        ref = mttkrp_coo(tensor, factors, 0)
        backend = ProcessBackend()
        streams = PlanCache().plan(tensor, 0).shard_streams(2)
        workers = backend._ensure_workers(2)
        # Sever worker 0's pipe while it is wedged mid-shard (and provably
        # still alive).
        timer = threading.Timer(0.4, workers[0].conn.close)
        events = EventLog()
        t0 = time.monotonic()
        timer.start()
        try:
            with telemetry_session() as tel:
                got = backend.run_shards(
                    streams, [np.asarray(f) for f in factors], 0,
                    tensor.shape[0], 6,
                    EngineConfig(
                        shards=2, backend="processes", shard_timeout=0.0
                    ),
                    faults=self._WedgeShardZero(), events=events,
                )
            elapsed = time.monotonic() - t0
        finally:
            timer.cancel()
            backend.shutdown()
        assert np.array_equal(ref, got)
        assert elapsed < 3.0  # did not wait out the wedged worker's sleep
        (lost,) = events.of_kind("worker_lost")
        assert "task pipe broke" in lost.detail
        assert events.of_kind("shard_timeout") == []
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.backend.workers_lost"] == 1
        assert counters["engine.backend.respawns"] >= 1


class TestForkSafety:
    def test_forked_child_closes_inherited_pipe_fds(self):
        """Regression: a forked child used to keep the inherited parent
        ends of every worker pipe open — one leaked FD per worker, holding
        the real parent's pipes half-open for the child's lifetime."""
        backend = ProcessBackend()
        backend._ensure_workers(1)
        inherited = backend._workers[0]
        pool = backend._segment_pool()
        lease = pool.lease(64)
        name = lease.name
        backend._pid = -1  # simulate: this process is a fork of the owner
        backend._ensure_workers(1)
        try:
            assert inherited.conn.closed
            assert backend._workers[0] is not inherited
            # The inherited shm pool is forgotten, never unlinked — its
            # segments still belong to the real parent.
            assert backend._shm_pool is None
            from repro.engine.backends.shm import attach_segment

            probe = attach_segment(name)  # still linked
            probe.close()
        finally:
            backend.shutdown()
            pool.close()  # the "real parent" reaps its own segments
            inherited.proc.kill()
            inherited.proc.join(timeout=2.0)


class TestWorkerPlanMemo:
    def test_memo_is_bounded_and_reloads_evicted_plans(self, tmp_path):
        """Regression: the worker-side plan memo grew without bound. It is
        now an LRU capped at ``_PLAN_MEMO_LIMIT``; a plan evicted from the
        memo is transparently re-loaded from the on-disk store. The
        worker's plan-store hit counters (shipped in telemetry batches)
        make both behaviours observable from the parent side."""
        from repro.engine import PlanStore
        from repro.engine.backends.processes import _worker_main
        from repro.engine.plan import MttkrpPlan

        store = PlanStore(tmp_path / "plans")
        rng = np.random.default_rng(0)
        tensors, keys = [], []
        for s in range(_PLAN_MEMO_LIMIT + 3):
            t = random_sparse((12, 10, 8), nnz=200, seed=100 + s)
            key = f"memo{s:02d}-coo-m0"
            store.save(
                key,
                MttkrpPlan.from_arrays(t.indices, t.values, t.shape, 0),
            )
            tensors.append(t)
            keys.append(key)

        def task_for(i):
            return {
                "mode": 0, "out_rows": tensors[i].shape[0], "rank": 4,
                "chunk": 128, "shard": 0, "n_shards": 1, "telemetry": True,
                "stream": None, "store": str(tmp_path / "plans"),
                "key": keys[i], "fmats": fmats_for[i],
            }

        fmats_for = [
            [rng.random((d, 4)) for d in t.shape] for t in tensors
        ]
        # Drive the worker loop in a thread over a real pipe: no fork, so
        # the memo's state is directly exercised end to end.
        parent, child = multiprocessing.Pipe(duplex=True)
        thread = threading.Thread(
            target=_worker_main, args=(child, 0), daemon=True
        )
        thread.start()

        def roundtrip(i):
            parent.send(task_for(i))
            status, payload, batch = parent.recv()
            assert status == "ok"
            assert np.array_equal(
                payload, mttkrp_coo(tensors[i], fmats_for[i], 0)
            )
            return (batch or {}).get("counters", {}).get(
                "engine.store.hits", 0
            )

        hits = sum(roundtrip(i) for i in range(len(keys)))
        assert hits == len(keys)  # every plan loaded from the store once
        # The most recent plan is still memoized: no store load.
        assert roundtrip(len(keys) - 1) == 0
        # The oldest plan was evicted from the bounded memo: re-loaded.
        assert roundtrip(0) == 1
        parent.send(None)
        reply = parent.recv()
        assert reply[0] == "flush"
        thread.join(timeout=5.0)
        assert not thread.is_alive()


class TestPlanRefShipping:
    def test_workers_load_plans_from_the_store(self, tensor, factors, tmp_path):
        """With a plan store configured the task carries only the store key;
        workers rebuild their shard stream from the persisted plan."""
        cfg = _cfg(plan_store=tmp_path / "plans")
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_coo(tensor, factors, mode)
            got = engine_mttkrp(tensor, factors, mode, "coo", cfg, cache)
            assert np.array_equal(ref, got)
        assert cache.store is not None and len(cache.store) == tensor.ndim

    def test_store_backed_dispatch_survives_a_kill(self, tensor, factors, tmp_path):
        cfg = _cfg(plan_store=tmp_path / "plans")
        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=6
        )
        events = EventLog()
        got = engine_mttkrp(
            tensor, factors, 0, "coo", cfg, PlanCache(),
            faults=inj, events=events,
        )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        assert len(events.of_kind("worker_lost")) == 1


class TestLifecycle:
    def test_shutdown_stops_workers_and_is_idempotent(self, tensor, factors):
        backend = get_backend("processes")
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
        procs = [w.proc for w in backend._workers]
        assert procs
        backend.shutdown()
        assert backend._workers == []
        backend.shutdown()
        # A later dispatch lazily rebuilds the pool.
        got = engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))

    def test_fresh_backend_instance_is_independent(self, tensor, factors):
        """Direct construction (outside the registry) works and cleans up."""
        backend = ProcessBackend()
        plan = PlanCache().plan(tensor, 0)
        streams = plan.shard_streams(2)
        got = backend.run_shards(
            streams, [np.asarray(f) for f in factors], 0,
            tensor.shape[0], 6, EngineConfig(shards=2, backend="processes"),
        )
        backend.shutdown()
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
