"""The zero-copy shared-memory shard transport, end to end.

Contract under test (the PR-9 tentpole): with ``EngineConfig.shm`` on, the
processes backend publishes factor matrices once per dispatch into pooled
shared-memory segments and collects each shard from a parent-allocated shm
accumulator — bitwise identical to the pipe transport, the threads
backend, and serial execution; span-shape identical to every other
backend (with a truthful ``transport`` attr); and leak-free: zero shm
segments survive ``shutdown_backends()``, worker respawn flushes idle
segments, and every fault path discards (never recycles) the abandoned
accumulator.

Spawns real worker processes, so the module is marked ``procfaults`` and
excluded from tier-1; it runs via ``scripts/run_fault_suite.py``.
"""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    PlanCache,
    engine_mttkrp,
    get_backend,
    shutdown_backends,
)
from repro.engine.backends.processes import _attach_shm_task
from repro.engine.backends.shm import (
    SegmentPool,
    ShmAttachError,
    attach_segment,
    shm_available,
)
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.obs import telemetry_session
from repro.resilience import EventLog, FaultInjector, FaultSpec
from repro.tensor.synthetic import random_sparse

pytestmark = [
    pytest.mark.procfaults,
    pytest.mark.skipif(
        not shm_available(), reason="POSIX shared memory unavailable"
    ),
]

SHARDS = 3
RANK = 5


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((36, 28, 20), nnz=2200, seed=7)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(6)
    return [rng.random((d, RANK)) for d in tensor.shape]


@pytest.fixture(scope="module", autouse=True)
def _reap_workers():
    yield
    shutdown_backends()


def _cfg(shm="on", **overrides):
    kw = dict(shards=SHARDS, chunk=256, backend="processes", shm=shm)
    kw.update(overrides)
    return EngineConfig(**kw)


class TestParity:
    def test_every_backend_and_transport_bitwise_identical(
        self, tensor, factors
    ):
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_coo(tensor, factors, mode)
            for cfg in (
                EngineConfig(shards=SHARDS, chunk=256, backend="serial"),
                EngineConfig(shards=SHARDS, chunk=256, backend="threads"),
                _cfg(shm="off"),
                _cfg(shm="on"),
            ):
                got = engine_mttkrp(tensor, factors, mode, "coo", cfg, cache)
                assert np.array_equal(ref, got), (cfg.backend, cfg.shm, mode)

    def test_repeat_dispatches_reuse_segments(self, tensor, factors):
        """One write, N readers, pooled: the second and third dispatch
        lease the first dispatch's segments instead of creating more."""
        shutdown_backends()
        ref = mttkrp_coo(tensor, factors, 0)
        with telemetry_session() as tel:
            cache = PlanCache()
            for _ in range(3):
                got = engine_mttkrp(
                    tensor, factors, 0, "coo", _cfg(shm="on"), cache
                )
                assert np.array_equal(ref, got)
        counters = tel.metrics.summary()["counters"]
        # ndim factor segments + one accumulator per shard, created once.
        assert counters["engine.shm.segments"] == tensor.ndim + SHARDS
        backend = get_backend("processes")
        assert len(backend._shm_pool.segment_names()) == tensor.ndim + SHARDS


class TestSpanShapes:
    def _traced(self, tensor, factors, cfg):
        try:
            with telemetry_session() as tel:
                engine_mttkrp(tensor, factors, 0, "coo", cfg, PlanCache())
        finally:
            shutdown_backends()
        return tel

    def test_trace_shapes_match_across_transports(self, tensor, factors):
        """PR-7 contract, extended: the trace *shape* is transport-
        independent, and every shard span names the transport that ran."""
        shapes, transports = {}, {}
        for label, cfg in (
            ("serial", EngineConfig(shards=SHARDS, chunk=256, backend="serial")),
            ("threads", EngineConfig(shards=SHARDS, chunk=256, backend="threads")),
            ("pipe", _cfg(shm="off")),
            ("shm", _cfg(shm="on")),
        ):
            tel = self._traced(tensor, factors, cfg)
            shapes[label] = sorted(
                (s.name, s.attrs.get("shard"))
                for s in tel.record.spans
                if s.name in ("shard", "shard_kernel")
            )
            transports[label] = {
                s.attrs.get("transport")
                for s in tel.record.spans
                if s.name == "shard"
            }
        assert (
            shapes["serial"] == shapes["threads"]
            == shapes["pipe"] == shapes["shm"]
        )
        assert transports == {
            "serial": {"inline"},
            "threads": {"threads"},
            "pipe": {"pipe"},
            "shm": {"shm"},
        }

    def test_worker_attribution_survives_shm(self, tensor, factors):
        """Kernel spans still ship from the worker over the reply pipe;
        only the array payloads moved to shared memory."""
        tel = self._traced(tensor, factors, _cfg(shm="on"))
        shard_ids = {s.id for s in tel.record.spans if s.name == "shard"}
        kernels = [s for s in tel.record.spans if s.name == "shard_kernel"]
        assert len(kernels) == SHARDS
        assert {k.parent for k in kernels} == shard_ids
        for k in kernels:
            assert k.worker is not None
            assert set(k.worker) == {"pid", "id"}


class TestLeakHygiene:
    def test_shutdown_unlinks_every_segment(self, tensor, factors):
        backend = get_backend("processes")
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(shm="on"), PlanCache())
        names = backend._shm_pool.segment_names()
        assert names  # the shm transport actually ran
        shutdown_backends()
        for name in names:
            with pytest.raises(ShmAttachError):
                attach_segment(name)

    def test_respawn_flushes_idle_segments(self, tensor, factors):
        """A respawned worker must never be able to attach a recycled name
        from a dispatch it did not see: respawn unlinks the free list."""
        shutdown_backends()
        backend = get_backend("processes")
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(shm="on"), PlanCache())
        names = backend._shm_pool.segment_names()
        assert len(names) == tensor.ndim + SHARDS
        backend._respawn(0)
        assert backend._shm_pool.segment_names() == []
        for name in names:
            with pytest.raises(ShmAttachError):
                attach_segment(name)
        # The next dispatch simply republishes into fresh segments.
        got = engine_mttkrp(
            tensor, factors, 0, "coo", _cfg(shm="on"), PlanCache()
        )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))


class TestFaultRecovery:
    @pytest.mark.parametrize(
        "kind,event",
        [("kill_worker", "worker_lost"), ("worker_crash", "shard_retry")],
    )
    def test_fault_paths_bitwise_identical_and_discard_the_accumulator(
        self, tensor, factors, kind, event
    ):
        shutdown_backends()
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", kind, probability=1.0), seed=5
        )
        events = EventLog()
        backend = get_backend("processes")
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(shm="on"), PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        assert len(events.of_kind(event)) == 1
        # Fault hygiene: the redone shard's shm accumulator was discarded
        # outright — the pool now owns the factor segments plus one
        # accumulator per *unaffected* shard.
        assert (
            len(backend._shm_pool.segment_names())
            == tensor.ndim + SHARDS - 1
        )
        # The redone shard's span tells the truth about how it ran.
        redone = [
            s for s in tel.record.spans
            if s.name == "shard" and s.attrs.get("redone")
        ]
        assert [s.attrs["transport"] for s in redone] == ["inline"]

    def test_corrupt_store_bitwise_identical_with_shm(
        self, tensor, factors, tmp_path
    ):
        """Store corruption under the shm transport: the entry is
        quarantined and replanned, workers re-derive their shard streams,
        and the shm-collected result still matches serial bitwise."""
        shutdown_backends()
        ref = mttkrp_coo(tensor, factors, 0)
        cfg = _cfg(shm="on", plan_store=tmp_path / "plans")
        cache = PlanCache()
        # Warm the store so the injected fault has an entry to damage.
        assert np.array_equal(
            ref, engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)
        )
        inj = FaultInjector(
            FaultSpec("EXECUTE", "corrupt_store", probability=1.0), seed=9
        )
        events = EventLog()
        got = engine_mttkrp(
            tensor, factors, 0, "coo", cfg, cache,
            faults=inj, events=events,
        )
        assert np.array_equal(ref, got)
        assert len(events.of_kind("plan_repaired")) == 1

    def test_straggler_timeout_bitwise_identical_with_shm(
        self, tensor, factors
    ):
        shutdown_backends()
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "slow_shard", probability=1.0, magnitude=0.5),
            seed=2,
        )
        events = EventLog()
        backend = get_backend("processes")
        got = engine_mttkrp(
            tensor, factors, 0, "coo", _cfg(shm="on", shard_timeout=0.05),
            PlanCache(), faults=inj, events=events,
        )
        assert np.array_equal(ref, got)
        assert len(events.of_kind("shard_timeout")) == 1
        assert (
            len(backend._shm_pool.segment_names())
            == tensor.ndim + SHARDS - 1
        )


class TestAttachFailure:
    def test_attach_failure_counted_and_redone_serially(
        self, tensor, factors, monkeypatch
    ):
        """A worker that cannot map a segment reports ShmAttachError like
        any in-worker exception: the parent counts it, redoes the shard
        serially into a private buffer, and the result stays bitwise."""
        shutdown_backends()  # the fresh pool must fork with the patch below
        import repro.engine.backends.shm as shm_mod

        def refuse(name):
            raise ShmAttachError(f"injected attach failure for {name!r}")

        monkeypatch.setattr(shm_mod, "attach_segment", refuse)
        ref = mttkrp_coo(tensor, factors, 0)
        events = EventLog()
        try:
            with telemetry_session() as tel:
                got = engine_mttkrp(
                    tensor, factors, 0, "coo", _cfg(shm="on"), PlanCache(),
                    events=events,
                )
        finally:
            # Workers forked with the patched attach must not leak into
            # later tests.
            shutdown_backends()
        assert np.array_equal(ref, got)
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.shm.attach_failures"] == SHARDS
        assert counters["engine.shard.retries"] == SHARDS
        retries = events.of_kind("shard_retry")
        assert len(retries) == SHARDS
        assert all("ShmAttachError" in ev.detail for ev in retries)
        shard_spans = [s for s in tel.record.spans if s.name == "shard"]
        assert {s.attrs["transport"] for s in shard_spans} == {"inline"}

    def test_worker_refuses_stale_generation(self):
        """A descriptor from an older dispatch than the worker has already
        served is refused before any segment is touched."""
        desc = {
            "gen": 1,
            "fmats": [],
            "out": {"name": "never-attached", "shape": (1, 1)},
        }
        attached: list = []
        with pytest.raises(ShmAttachError, match="stale shm generation"):
            _attach_shm_task(desc, attached, 5)
        assert attached == []

    def test_current_generation_attaches_and_shares_both_ways(self):
        """Same-generation descriptors attach; the views are genuinely
        zero-copy: parent writes are visible to the attacher and vice
        versa."""
        pool = SegmentPool()
        fm = pool.lease(4 * 8)
        out = pool.lease(4 * 8)
        fm.view((2, 2))[...] = 7.0
        attached: list = []
        try:
            fmats, out_view, gen = _attach_shm_task(
                {
                    "gen": 3,
                    "fmats": [{"name": fm.name, "shape": (2, 2)}],
                    "out": {"name": out.name, "shape": (2, 2)},
                },
                attached, 3,
            )
            assert gen == 3
            assert np.array_equal(fmats[0], np.full((2, 2), 7.0))
            out_view[...] = 1.0
            assert np.array_equal(out.view((2, 2)), np.ones((2, 2)))
        finally:
            fmats = out_view = None
            for seg in attached:
                seg.close()
            pool.close()


class TestSegmentPool:
    def test_lease_reuses_by_capacity_and_counts_creations(self):
        with telemetry_session() as tel:
            pool = SegmentPool()
            a = pool.lease(1024)
            pool.release(a)
            b = pool.lease(512)  # fits inside the freed 1024-byte segment
            assert b is a
            c = pool.lease(2048)  # nothing free is big enough
            assert c is not a
            pool.close()
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.shm.segments"] == 2
        assert counters["engine.shm.bytes"] >= 1024 + 2048

    def test_discard_destroys_and_never_recycles(self):
        pool = SegmentPool()
        lease = pool.lease(256)
        name = lease.name
        pool.discard(lease)
        assert pool.segment_names() == []
        with pytest.raises(ShmAttachError):
            attach_segment(name)
        pool.close()

    def test_close_unlinks_free_and_leased_and_is_idempotent(self):
        pool = SegmentPool()
        free = pool.lease(128)
        pool.release(free)
        leased = pool.lease(4096)
        names = [free.name, leased.name]
        pool.close()
        pool.close()
        assert pool.segment_names() == []
        for name in names:
            with pytest.raises(ShmAttachError):
                attach_segment(name)

    def test_generations_are_monotonic(self):
        pool = SegmentPool()
        try:
            assert pool.next_generation() == 1
            assert pool.next_generation() == 2
            assert pool.next_generation() == 3
        finally:
            pool.close()


class TestDispatchOverheadBench:
    def test_shm_dispatch_group_is_optional_and_well_formed(self):
        """The opt-in shmdispatch bench group measures both transports and
        validates against the BENCH schema; its baseline is marked
        optional so default suite runs do not regress on its absence."""
        from repro.obs.analysis.bench import run_bench_suite, validate_bench

        doc = run_bench_suite(
            wall=False, shm_bench=True,
            shm_shards=2, shm_nnz=8_000, shm_repeats=1,
        )
        assert validate_bench(doc) == []
        (group,) = [
            g for g in doc["groups"] if g["figure"] == "shmdispatch"
        ]
        assert group["meta"]["optional"] is True
        assert group["meta"]["shm_available"] is True
        metrics = group["metrics"]
        assert metrics["pipe.dispatch_s"] > 0.0
        assert metrics["shm.dispatch_s"] > 0.0
        assert metrics["shm_speedup"] == pytest.approx(
            metrics["pipe.dispatch_s"] / metrics["shm.dispatch_s"]
        )
