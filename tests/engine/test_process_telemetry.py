"""Cross-process telemetry under the real process pool (tentpole gate).

Marked ``procfaults`` (spawns OS processes; excluded from tier-1). The
contract under test: a traced run on the ``processes`` backend produces
the *same trace shape* as the threads backend — one ``shard`` span and
one worker-attributed ``shard_kernel`` span per shard — except the
kernel spans carry ≥2 distinct worker *pids*, proof they really executed
in other processes. Plus the shutdown-flush regression and the telemetry
self-cost budget.
"""

import time

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    PlanCache,
    engine_mttkrp,
    get_backend,
    shutdown_backends,
)
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.obs import telemetry_session
from repro.resilience import EventLog, FaultInjector, FaultSpec
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.procfaults

SHARDS = 3


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((40, 30, 20), nnz=2500, seed=3)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(1)
    return [rng.random((d, 6)) for d in tensor.shape]


@pytest.fixture(scope="module", autouse=True)
def _reap_workers():
    yield
    shutdown_backends()


def _cfg(backend="processes", **overrides):
    kw = dict(shards=SHARDS, chunk=256, backend=backend)
    kw.update(overrides)
    return EngineConfig(**kw)


class TestWorkerPidTracks:
    def test_kernel_spans_from_distinct_worker_pids(self, tensor, factors):
        import os

        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(), PlanCache()
            )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        kernels = [s for s in tel.record.spans if s.name == "shard_kernel"]
        assert len(kernels) == SHARDS
        pids = {k.worker["pid"] for k in kernels}
        # The acceptance criterion: spans from >= 2 distinct worker pids,
        # and none of them is the dispatching process.
        assert len(pids) >= 2
        assert os.getpid() not in pids
        # Worker slot ids match the shards they ran.
        assert sorted(k.worker["id"] for k in kernels) == list(range(SHARDS))

    def test_kernel_spans_rerooted_under_shard_spans(self, tensor, factors):
        with telemetry_session() as tel:
            engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
        shard_ids = {s.id for s in tel.record.spans if s.name == "shard"}
        kernels = [s for s in tel.record.spans if s.name == "shard_kernel"]
        assert {k.parent for k in kernels} == shard_ids
        for k in kernels:
            shard_span = next(s for s in tel.record.spans if s.id == k.parent)
            # Rebased into the shard span's window.
            assert k.t0 >= shard_span.t0

    def test_trace_shape_matches_threads_backend(self, tensor, factors):
        shapes = {}
        for backend in ("threads", "processes"):
            with telemetry_session() as tel:
                engine_mttkrp(
                    tensor, factors, 0, "coo", _cfg(backend), PlanCache()
                )
            shapes[backend] = sorted(
                (s.name, s.attrs.get("shard"))
                for s in tel.record.spans
                if s.name in ("shard", "shard_kernel")
            )
            shutdown_backends()
        assert shapes["threads"] == shapes["processes"]

    def test_chrome_export_has_per_worker_pid_tracks(self, tensor, factors):
        from repro.obs import telemetry_to_chrome_trace
        from repro.obs.chrome import PID_WORKERS

        with telemetry_session() as tel:
            engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
        trace = telemetry_to_chrome_trace(tel.record)
        kernel_events = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "shard_kernel"
        ]
        assert len(kernel_events) == SHARDS
        assert {e["pid"] for e in kernel_events} == {
            PID_WORKERS + s for s in range(SHARDS)
        }
        # tid is the worker's OS pid; >= 2 distinct real processes.
        assert len({e["tid"] for e in kernel_events}) >= 2

    def test_store_counters_shipped_from_workers(self, tensor, factors, tmp_path):
        """Plan-store traffic inside workers lands in the parent's ambient
        registry — the hit-rate `repro watch` and `repro perf` report."""
        cfg = _cfg(plan_store=tmp_path / "plans")
        cache = PlanCache()
        with telemetry_session() as tel:
            engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)
            engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)
        counters = tel.metrics.summary()["counters"]
        # Workers load the plan by store key: their hits ship back.
        assert counters.get("engine.store.hits", 0) >= SHARDS


class TestShutdownFlush:
    def test_shutdown_merges_final_worker_flush(self, tensor, factors):
        """Regression: pending worker telemetry must be flushed and merged
        before pool teardown, not dropped with the processes."""
        with telemetry_session() as tel:
            engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
            assert "obs.worker.flushes" not in tel.metrics.summary()["counters"]
            shutdown_backends()
            counters = tel.metrics.summary()["counters"]
        # Every worker's shutdown flush arrived (the flush counter is
        # bumped worker-side immediately before draining, so a merged
        # flush is never empty).
        assert counters["obs.worker.flushes"] == SHARDS

    def test_shutdown_without_session_is_safe(self, tensor, factors):
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), PlanCache())
        shutdown_backends()  # no ambient session: must not raise
        shutdown_backends()


class TestRecoveryAttribution:
    def test_killed_worker_shard_still_has_kernel_span(self, tensor, factors):
        import os

        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=5
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(), PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        (lost,) = events.of_kind("worker_lost")
        killed_shard = lost.data["shard"]
        # The redo ran inline on the dispatching process, captured all the
        # same: its kernel span carries the parent's pid.
        shard_spans = {
            s.attrs["shard"]: s for s in tel.record.spans if s.name == "shard"
        }
        assert shard_spans[killed_shard].attrs.get("redone") is True
        kernels = [s for s in tel.record.spans if s.name == "shard_kernel"]
        by_shard = {k.attrs["shard"]: k for k in kernels}
        assert set(by_shard) == set(range(SHARDS))
        assert by_shard[killed_shard].worker["pid"] == os.getpid()
        # No shard went silent: every captured shard shipped spans.
        assert "obs.worker.silent" not in tel.metrics.summary()["counters"]


class TestSelfCost:
    def test_shipping_overhead_under_budget(self, tensor, factors):
        """The acceptance budget: telemetry shipping (worker-side drain +
        parent-side merge) must stay under 5% of traced wall-clock.

        Best of three trials: the budget bounds the systematic shipping
        cost, and a single OS scheduling hiccup inside a ~millisecond
        drain would otherwise dominate the tiny wall-clock.
        """
        cache = PlanCache()
        engine_mttkrp(tensor, factors, 0, "coo", _cfg(), cache)  # warm pool
        ratios = []
        for _ in range(3):
            t0 = time.perf_counter()
            with telemetry_session() as tel:
                for _ in range(5):
                    for mode in range(tensor.ndim):
                        engine_mttkrp(
                            tensor, factors, mode, "coo", _cfg(), cache
                        )
            wall = time.perf_counter() - t0
            counters = tel.metrics.summary()["counters"]
            overhead = (
                counters.get("obs.overhead.worker_s", 0.0)
                + counters.get("obs.overhead.merge_s", 0.0)
            )
            assert counters["obs.overhead.batches"] >= 5 * tensor.ndim * SHARDS
            ratios.append(overhead / wall)
            if ratios[-1] < 0.05:
                return
        assert min(ratios) < 0.05, (
            f"telemetry self-cost is >= 5% of wall-clock in all trials: "
            f"{[f'{r:.2%}' for r in ratios]}"
        )


class TestRespawnTracks:
    def test_respawned_slot_keeps_track_new_pid_lane(self, tensor, factors):
        """A killed-and-respawned worker slot stays on the same Chrome
        track (keyed by slot) but shows a new pid lane."""
        from repro.obs import telemetry_to_chrome_trace
        from repro.obs.chrome import PID_WORKERS

        inj = FaultInjector(
            FaultSpec("EXECUTE", "kill_worker", probability=1.0), seed=5
        )
        events = EventLog()
        with telemetry_session() as tel:
            engine_mttkrp(
                tensor, factors, 0, "coo", _cfg(), PlanCache(),
                faults=inj, events=events,
            )
            # Second dispatch on the respawned pool: the same slot now has
            # a different OS pid.
            engine_mttkrp(tensor, factors, 1, "coo", _cfg(), PlanCache())
        (lost,) = events.of_kind("worker_lost")
        slot = lost.data["shard"]
        trace = telemetry_to_chrome_trace(tel.record)
        track_pid = PID_WORKERS + slot
        names = [
            e for e in trace["traceEvents"]
            if e["ph"] == "M" and e["pid"] == track_pid
            and e["name"] == "process_name"
        ]
        assert [n["args"]["name"] for n in names] == [f"worker {slot}"]
        lanes = {
            e["tid"] for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] == track_pid
        }
        assert len(lanes) >= 2  # old pid lane + respawned pid lane
