"""Cross-format MTTKRP equivalence property test (satellite 4).

For random shapes — including length-1 modes, empty slices, and
single-nonzero tensors — every storage format must agree with the dense
oracle, and the engine's cached/sharded execution must reproduce each
format's seed kernel bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, PlanCache, engine_mttkrp
from repro.kernels.mttkrp import mttkrp_dense
from repro.kernels.mttkrp_alto import mttkrp_alto
from repro.kernels.mttkrp_blco import mttkrp_blco
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.coo import SparseTensor
from repro.tensor.csf import CsfTensor
from repro.tensor.synthetic import random_sparse

FORMATS = ("coo", "alto", "blco", "csf")


def _seed_mttkrp(tensor, factors, mode, fmt):
    if fmt == "coo":
        return mttkrp_coo(tensor, factors, mode)
    if fmt == "alto":
        return mttkrp_alto(AltoTensor.from_coo(tensor), factors, mode)
    if fmt == "blco":
        return mttkrp_blco(BlcoTensor.from_coo(tensor), factors, mode)
    return mttkrp_csf(CsfTensor.from_coo(tensor, root_mode=mode), factors, mode)


@st.composite
def problem(draw):
    ndim = draw(st.integers(min_value=2, max_value=4))
    shape = tuple(
        draw(st.integers(min_value=1, max_value=10)) for _ in range(ndim)
    )
    cap = int(np.prod(shape))
    nnz = draw(st.integers(min_value=1, max_value=min(50, cap)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    mode = draw(st.integers(min_value=0, max_value=ndim - 1))
    rank = draw(st.integers(min_value=1, max_value=5))
    tensor = random_sparse(shape, nnz, seed=seed)
    rng = np.random.default_rng(seed + 1)
    factors = [rng.random((d, rank)) for d in shape]
    return tensor, factors, mode


class TestCrossFormatProperty:
    @given(problem())
    @settings(max_examples=40, deadline=None)
    def test_formats_agree_and_engine_is_bitwise(self, prob):
        tensor, factors, mode = prob
        oracle = mttkrp_dense(tensor.to_dense(), factors, mode)
        cache = PlanCache()
        serial = EngineConfig(chunk=8)
        sharded = EngineConfig(chunk=8, shards=3)
        for fmt in FORMATS:
            seed = _seed_mttkrp(tensor, factors, mode, fmt)
            # Every format agrees with the dense oracle (floating error only).
            np.testing.assert_allclose(seed, oracle, rtol=1e-10, atol=1e-12,
                                       err_msg=fmt)
            # Engine execution is bitwise equal to the seed kernel, cold
            # and from cache.
            cold = engine_mttkrp(tensor, factors, mode, fmt, serial, cache)
            warm = engine_mttkrp(tensor, factors, mode, fmt, serial, cache)
            assert np.array_equal(cold, seed), fmt
            assert np.array_equal(warm, seed), fmt
            if fmt in ("coo", "alto"):
                shard = engine_mttkrp(tensor, factors, mode, fmt, sharded, cache)
                assert np.array_equal(shard, seed), f"{fmt} sharded"


class TestEdgeShapes:
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_length_one_target_mode(self, fmt):
        t = random_sparse((1, 8, 6), nnz=20, seed=3)
        rng = np.random.default_rng(0)
        factors = [rng.random((d, 3)) for d in t.shape]
        seed = _seed_mttkrp(t, factors, 0, fmt)
        got = engine_mttkrp(t, factors, 0, fmt, EngineConfig(shards=2), PlanCache())
        assert np.array_equal(got, seed)

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_single_nonzero_tensor(self, fmt):
        t = SparseTensor(
            np.array([[1, 2, 0, 3]], dtype=np.int64), np.array([2.5]),
            (3, 4, 1, 5),
        )
        rng = np.random.default_rng(1)
        factors = [rng.random((d, 2)) for d in t.shape]
        for mode in range(t.ndim):
            seed = _seed_mttkrp(t, factors, mode, fmt)
            got = engine_mttkrp(
                t, factors, mode, fmt, EngineConfig(chunk=1), PlanCache()
            )
            assert np.array_equal(got, seed), mode

    def test_empty_slices_stay_zero(self):
        """Rows of the target mode with no nonzeros must stay exactly 0.0
        in both the seed and the engine output."""
        idx = np.array([[0, 0, 0], [4, 1, 1]], dtype=np.int64)
        t = SparseTensor(idx, np.array([1.0, 2.0]), (5, 2, 2))
        rng = np.random.default_rng(2)
        factors = [rng.random((d, 3)) for d in t.shape]
        seed = mttkrp_coo(t, factors, 0)
        got = engine_mttkrp(t, factors, 0, "coo", EngineConfig(), PlanCache())
        assert np.array_equal(got, seed)
        assert np.array_equal(got[1:4], np.zeros((3, 3)))

    def test_two_mode_tensor(self):
        t = random_sparse((9, 7), nnz=25, seed=4)
        rng = np.random.default_rng(3)
        factors = [rng.random((d, 4)) for d in t.shape]
        for mode in (0, 1):
            seed = mttkrp_coo(t, factors, mode)
            got = engine_mttkrp(
                t, factors, mode, "coo", EngineConfig(shards=2), PlanCache()
            )
            assert np.array_equal(got, seed)
