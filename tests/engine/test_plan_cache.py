"""The per-tensor plan cache: keys, hits, invalidation, LRU, twin adoption."""

import numpy as np
import pytest

from repro.engine import EngineConfig, MttkrpPlan, PlanCache, resolve_engine
from repro.engine.config import default_shards
from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import random_sparse


@pytest.fixture
def tensor():
    return random_sparse((17, 13, 9), nnz=300, seed=5)


class TestEngineConfig:
    def test_defaults(self):
        cfg = EngineConfig()
        assert cfg.chunk == 4096 and cfg.shards == 1
        assert not cfg.gram_rescale and cfg.validate == "cheap"

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(chunk=-1)
        with pytest.raises(ValueError):
            EngineConfig(shards=0)
        with pytest.raises(ValueError):
            EngineConfig(validate="sometimes")

    def test_resolve_settings(self):
        assert resolve_engine(None) is None
        assert resolve_engine(False) is None
        assert resolve_engine("off") is None
        assert resolve_engine(True) == EngineConfig()
        assert resolve_engine("on") == EngineConfig()
        assert resolve_engine("cached") == EngineConfig()
        assert resolve_engine("sharded").shards == default_shards()
        assert resolve_engine({"chunk": 512, "shards": 3}) == EngineConfig(
            chunk=512, shards=3
        )
        cfg = EngineConfig(shards=2)
        assert resolve_engine(cfg) is cfg
        with pytest.raises(ValueError):
            resolve_engine("turbo")


class TestPlanCacheLookups:
    def test_miss_then_hits(self, tensor):
        cache = PlanCache()
        first = cache.plan(tensor, 0)
        again = cache.plan(tensor, 0)
        assert first is again
        assert (cache.misses, cache.hits) == (1, 1)
        assert cache.hit_rate() == 0.5

    def test_modes_are_separate_plans(self, tensor):
        cache = PlanCache()
        plans = {cache.plan(tensor, m).mode for m in range(tensor.ndim)}
        assert plans == {0, 1, 2}
        assert cache.misses == tensor.ndim and len(cache) == 1

    def test_invalidate_drops_plans(self, tensor):
        cache = PlanCache()
        cache.plan(tensor, 0)
        cache.invalidate(tensor)
        assert len(cache) == 0
        cache.plan(tensor, 0)
        assert cache.misses == 2

    def test_cheap_probe_detects_mutation(self, tensor):
        cache = PlanCache()
        stale = cache.plan(tensor, 0)
        tensor._values = tensor.values.copy()
        tensor._values[0] += 1.0  # in-place mutation under the cache
        fresh = cache.plan(tensor, 0)
        assert fresh is not stale
        assert np.array_equal(np.sort(fresh.stream.values), np.sort(tensor.values))

    def test_full_validation_detects_mid_array_mutation(self, tensor):
        """A single interior value change can dodge the 16-point sample;
        validate='full' hashes everything."""
        cache = PlanCache()
        cache.plan(tensor, 0, validate="full")
        tensor._values = tensor.values.copy()
        tensor._values[7] *= 2.0
        cache.plan(tensor, 0, validate="full")
        assert cache.misses == 2

    def test_content_twin_adopts_existing_plans(self, tensor):
        cache = PlanCache()
        plan = cache.plan(tensor, 1)
        twin = SparseTensor(
            tensor.indices.copy(), tensor.values.copy(), tensor.shape
        )
        assert cache.plan(twin, 1) is plan
        assert cache.hits == 1 and len(cache) == 2

    def test_lru_evicts_oldest_tensor(self):
        cache = PlanCache(max_tensors=2)
        tensors = [random_sparse((11, 7, 5), nnz=60, seed=s) for s in range(3)]
        for t in tensors:
            cache.plan(t, 0)
        assert len(cache) == 2
        cache.plan(tensors[0], 0)  # evicted → rebuilt
        assert cache.misses == 4

    def test_format_cache_builds_once(self, tensor):
        cache = PlanCache()
        calls = []

        def build(t):
            calls.append(t)
            return "converted"

        assert cache.format(tensor, "alto", build) == "converted"
        assert cache.format(tensor, "alto", build) == "converted"
        assert len(calls) == 1
        assert (cache.format_misses, cache.format_hits) == (1, 1)

    def test_nbytes_accounts_plans(self, tensor):
        cache = PlanCache()
        assert cache.nbytes == 0
        cache.plan(tensor, 0)
        assert cache.nbytes > 0


class TestPlanStructure:
    def test_plan_matches_seed_sort(self, tensor):
        plan = MttkrpPlan.from_arrays(
            tensor.indices, tensor.values, tensor.shape, 0
        )
        order = np.argsort(tensor.indices[:, 0], kind="stable")
        assert np.array_equal(plan.stream.values, tensor.values[order])
        assert np.array_equal(plan.stream.cols[0], tensor.indices[order, 0])
        # Segment out_index covers exactly the occupied rows, ascending.
        assert np.array_equal(
            plan.stream.out_index, np.unique(tensor.indices[:, 0])
        )

    def test_chunk_edges_align_to_segments(self, tensor):
        plan = MttkrpPlan.from_arrays(
            tensor.indices, tensor.values, tensor.shape, 1
        )
        stream = plan.stream
        for chunk in (1, 7, 64, 0):
            edges = stream.chunk_edges(chunk)
            assert edges[0] == 0 and edges[-1] == stream.n_segments
            assert (np.diff(edges) >= 1).all()
            if chunk > 0:
                # Each chunk holds <= chunk nonzeros unless it is a single
                # oversized segment.
                spans = stream.bounds[edges[1:]] - stream.bounds[edges[:-1]]
                single = np.diff(edges) == 1
                assert ((spans <= chunk) | single).all()

    def test_shard_streams_partition_segments(self, tensor):
        plan = MttkrpPlan.from_arrays(
            tensor.indices, tensor.values, tensor.shape, 2
        )
        streams = plan.shard_streams(3)
        assert sum(s.nnz for s in streams) == tensor.nnz
        rows = [set(s.out_index.tolist()) for s in streams]
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                assert not rows[i] & rows[j], "shards must own disjoint rows"

    def test_shard_streams_memoized(self, tensor):
        plan = MttkrpPlan.from_arrays(
            tensor.indices, tensor.values, tensor.shape, 0
        )
        assert plan.shard_streams(4) is plan.shard_streams(4)
