"""The backend-independent observability contract (tier-1 half).

Every executed shard must appear in the trace as a parent-side ``shard``
span with at least one worker-attributed ``shard_kernel`` span beneath it
— whether the shard ran inline (serial) or on a pool thread. The
processes-backend half of the contract lives in test_process_telemetry.py
(marked ``procfaults``, excluded from tier-1).
"""

import numpy as np
import pytest

from repro.engine import EngineConfig, PlanCache, engine_mttkrp, shutdown_backends
from repro.obs import telemetry_session
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.telemetry

SHARDS = 3


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((30, 24, 18), nnz=1500, seed=11)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(4)
    return [rng.random((d, 5)) for d in tensor.shape]


def _traced_run(tensor, factors, backend, jsonl_path=None):
    cfg = EngineConfig(shards=SHARDS, chunk=256, backend=backend)
    try:
        with telemetry_session(jsonl_path=jsonl_path) as tel:
            engine_mttkrp(tensor, factors, 0, "coo", cfg, PlanCache())
    finally:
        shutdown_backends()
    return tel


@pytest.mark.parametrize("backend", ["serial", "threads"])
class TestShardSpans:
    def test_one_shard_span_per_shard(self, tensor, factors, backend):
        tel = _traced_run(tensor, factors, backend)
        shard_spans = [s for s in tel.record.spans if s.name == "shard"]
        assert len(shard_spans) == SHARDS
        assert sorted(s.attrs["shard"] for s in shard_spans) == list(range(SHARDS))
        assert sum(s.attrs["nnz"] for s in shard_spans) == tensor.nnz
        for s in shard_spans:
            assert not s.open
            assert s.worker is None  # synthesized host-side

    def test_kernel_span_under_every_shard(self, tensor, factors, backend):
        tel = _traced_run(tensor, factors, backend)
        shard_ids = {s.id for s in tel.record.spans if s.name == "shard"}
        kernels = [s for s in tel.record.spans if s.name == "shard_kernel"]
        assert len(kernels) == SHARDS
        assert {k.parent for k in kernels} == shard_ids
        for k in kernels:
            assert k.worker is not None
            assert set(k.worker) == {"pid", "id"}
            assert k.attrs["shard"] == k.worker["id"]

    def test_no_silent_workers_on_clean_run(self, tensor, factors, backend):
        tel = _traced_run(tensor, factors, backend)
        counters = tel.metrics.summary()["counters"]
        assert "obs.worker.silent" not in counters
        assert counters["obs.overhead.batches"] == SHARDS
        assert counters["obs.overhead.spans"] == SHARDS

    def test_trace_round_trips_through_schema(
        self, tensor, factors, backend, tmp_path
    ):
        from repro.obs import read_jsonl, validate_record

        path = tmp_path / "run.jsonl"
        _traced_run(tensor, factors, backend, jsonl_path=path)
        records = read_jsonl(path)
        for rec in records:
            assert validate_record(rec) == []
        kernel_lines = [
            r for r in records
            if r.get("type") == "span" and r.get("name") == "shard_kernel"
        ]
        assert len(kernel_lines) == SHARDS
        assert all(r["worker"] for r in kernel_lines)


class TestBackendParity:
    def test_serial_and_threads_trace_shapes_match(self, tensor, factors):
        shapes = {}
        for backend in ("serial", "threads"):
            tel = _traced_run(tensor, factors, backend)
            shapes[backend] = sorted(
                (s.name, s.attrs.get("shard"))
                for s in tel.record.spans
                if s.name in ("shard", "shard_kernel")
            )
        assert shapes["serial"] == shapes["threads"]

    def test_disabled_telemetry_ships_nothing(self, tensor, factors):
        # No ambient session: the zero-overhead path must not capture.
        cfg = EngineConfig(shards=SHARDS, chunk=256, backend="threads")
        try:
            got = engine_mttkrp(tensor, factors, 0, "coo", cfg, PlanCache())
        finally:
            shutdown_backends()
        ref = engine_mttkrp(
            tensor, factors, 0, "coo",
            EngineConfig(shards=1, backend="serial"), PlanCache(),
        )
        assert np.array_equal(got, ref)


class TestSilentWorkerCounter:
    def test_empty_batch_bumps_silent_counter(self):
        """A captured shard whose batches carry no spans is a silent
        worker — the counter the doctor's silent_worker finding reads."""
        from repro.engine.backends.base import ExecutionBackend

        backend = ExecutionBackend()
        with telemetry_session() as tel:
            backend._finish_shard(tel, None, 0.0, 0, 100, [None])
        counters = tel.metrics.summary()["counters"]
        assert counters["obs.worker.silent"] == 1
        # The shard span itself is still synthesized.
        assert [s.name for s in tel.record.spans if s.name == "shard"]

    def test_uncaptured_shard_is_not_silent(self):
        from repro.engine.backends.base import ExecutionBackend

        backend = ExecutionBackend()
        with telemetry_session() as tel:
            backend._finish_shard(tel, None, 0.0, 0, 100, [None], captured=False)
        assert "obs.worker.silent" not in tel.metrics.summary()["counters"]
