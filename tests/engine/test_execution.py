"""Engine execution must be bitwise identical to the seed kernels —
serial, chunked at any size, sharded, and for every dispatch format."""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    MttkrpPlan,
    PlanCache,
    all_mode_krp_rows,
    engine_mttkrp,
    run_plan,
)
from repro.kernels.mttkrp_alto import mttkrp_alto
from repro.kernels.mttkrp_blco import mttkrp_blco
from repro.kernels.mttkrp_coo import mttkrp_coo, partial_khatri_rao_rows
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.coo import SparseTensor
from repro.tensor.csf import CsfTensor
from repro.tensor.synthetic import random_sparse


def _factors(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random((d, rank)) for d in shape]


def _seed_mttkrp(tensor, factors, mode, fmt):
    """The uncached seed kernel for *fmt*, converted fresh per call."""
    if fmt == "coo":
        return mttkrp_coo(tensor, factors, mode)
    if fmt == "alto":
        return mttkrp_alto(AltoTensor.from_coo(tensor), factors, mode)
    if fmt == "blco":
        return mttkrp_blco(BlcoTensor.from_coo(tensor), factors, mode)
    return mttkrp_csf(CsfTensor.from_coo(tensor, root_mode=mode), factors, mode)


def _run(tensor, factors, mode, **cfg_kwargs):
    plan = MttkrpPlan.from_arrays(
        tensor.indices, tensor.values, tensor.shape, mode
    )
    fmats = [np.asarray(f, dtype=np.float64) for f in factors]
    rank = fmats[0].shape[1]
    return run_plan(
        plan, fmats, mode, tensor.shape[mode], rank, EngineConfig(**cfg_kwargs)
    )


class TestBitwiseAgainstSeed:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_serial_matches_coo_kernel(self, small3, factors3, mode):
        seed = mttkrp_coo(small3, factors3, mode)
        assert np.array_equal(_run(small3, factors3, mode), seed)

    @pytest.mark.parametrize("chunk", [0, 1, 3, 17, 4096])
    def test_any_chunk_size_is_bitwise_stable(self, small3, factors3, chunk):
        seed = mttkrp_coo(small3, factors3, 0)
        assert np.array_equal(_run(small3, factors3, 0, chunk=chunk), seed)

    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_sharded_matches_serial(self, small3, factors3, shards):
        seed = mttkrp_coo(small3, factors3, 1)
        got = _run(small3, factors3, 1, chunk=16, shards=shards)
        assert np.array_equal(got, seed)

    def test_more_shards_than_segments(self):
        t = random_sparse((3, 5, 4), nnz=6, seed=2)
        factors = _factors(t.shape, 4)
        seed = mttkrp_coo(t, factors, 0)
        assert np.array_equal(_run(t, factors, 0, shards=16), seed)

    def test_short_mode_tensor(self, small4, factors4):
        for mode in range(small4.ndim):
            seed = mttkrp_coo(small4, factors4, mode)
            assert np.array_equal(
                _run(small4, factors4, mode, chunk=32, shards=3), seed
            )

    def test_empty_tensor(self):
        t = SparseTensor(np.zeros((0, 3), dtype=np.int64), np.zeros(0), (7, 5, 3))
        factors = _factors(t.shape, 2)
        out = _run(t, factors, 0, shards=4)
        assert np.array_equal(out, np.zeros((7, 2)))

    def test_single_nonzero(self):
        t = SparseTensor(
            np.array([[2, 1, 0]], dtype=np.int64), np.array([1.5]), (4, 3, 2)
        )
        factors = _factors(t.shape, 3)
        assert np.array_equal(
            _run(t, factors, 0, shards=2), mttkrp_coo(t, factors, 0)
        )


class TestDriverDispatch:
    """engine_mttkrp vs the seed dispatcher, per format, cached twice."""

    @pytest.mark.parametrize("fmt", ["coo", "alto", "blco", "csf"])
    def test_formats_bitwise(self, small3, factors3, fmt):
        cache = PlanCache()
        seed = _seed_mttkrp(small3, factors3, 0, fmt)
        cfg = EngineConfig(chunk=64)
        cold = engine_mttkrp(small3, factors3, 0, fmt, cfg, cache)
        warm = engine_mttkrp(small3, factors3, 0, fmt, cfg, cache)
        assert np.array_equal(cold, seed)
        assert np.array_equal(warm, seed)

    @pytest.mark.parametrize("fmt", ["coo", "alto"])
    def test_sharded_formats_bitwise(self, small4, factors4, fmt):
        cache = PlanCache()
        cfg = EngineConfig(chunk=32, shards=3)
        for mode in range(small4.ndim):
            seed = _seed_mttkrp(small4, factors4, mode, fmt)
            got = engine_mttkrp(small4, factors4, mode, fmt, cfg, cache)
            assert np.array_equal(got, seed), (fmt, mode)

    def test_cached_plan_skips_recast_but_not_bits(self, small3):
        """Satellite 3: float32 factors are cast once and reused; results
        stay bitwise equal to the uncached seed path (rtol=0)."""
        cache = PlanCache()
        factors = [
            np.asarray(f, dtype=np.float32)
            for f in _factors(small3.shape, 5, seed=9)
        ]
        seed = mttkrp_coo(small3, factors, 0)
        cfg = EngineConfig()
        for _ in range(3):
            got = engine_mttkrp(small3, factors, 0, "coo", cfg, cache)
            assert np.array_equal(got, seed)

    def test_unknown_format_rejected(self, small3, factors3):
        with pytest.raises(ValueError, match="unknown engine format"):
            engine_mttkrp(small3, factors3, 0, "sptensor", EngineConfig(), PlanCache())


class TestBatchedKrp:
    def test_per_mode_bitwise_matches_seed(self, small3, factors3):
        per_mode, full = all_mode_krp_rows(
            small3.indices, small3.values, factors3, include_full=True
        )
        for mode in range(small3.ndim):
            seed = partial_khatri_rao_rows(
                small3.indices, small3.values, factors3, mode
            )
            assert np.array_equal(per_mode[mode], seed)
        seed_full = partial_khatri_rao_rows(
            small3.indices, small3.values, factors3, None
        )
        assert np.array_equal(full, seed_full)

    def test_without_full_product(self, small4, factors4):
        per_mode, full = all_mode_krp_rows(
            small4.indices, small4.values, factors4
        )
        assert full is None
        assert len(per_mode) == small4.ndim

    def test_empty_nonzeros(self):
        idx = np.zeros((0, 2), dtype=np.int64)
        vals = np.zeros(0)
        factors = [np.ones((3, 2)), np.ones((4, 2))]
        per_mode, full = all_mode_krp_rows(idx, vals, factors, include_full=True)
        assert all(p.shape == (0, 2) for p in per_mode)
        assert full.shape == (0, 2)
