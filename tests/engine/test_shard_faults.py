"""Chaos suite for the execution layer: every injected execution fault must
recover, and recovery must be bitwise identical to a fault-free run.

Covers the tentpole guarantees: worker crashes re-execute their shard
serially into a fresh accumulator, stragglers trip the per-shard timeout
and take the same path, corrupted cached plans are detected (by the
integrity probe, or by the replan-once execution catch) and replanned —
all counted through telemetry and logged as resilience events.
"""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    PlanCache,
    engine_mttkrp,
    run_shards,
    sharded_segment_accumulate,
)
from repro.kernels.mttkrp_coo import mttkrp_coo, segment_accumulate
from repro.kernels.mttkrp_hicoo import mttkrp_hicoo
from repro.obs import telemetry_session
from repro.resilience import EventLog, FaultInjector, FaultSpec, InjectedWorkerCrash
from repro.tensor.hicoo import HicooTensor
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((40, 30, 20), nnz=2500, seed=3)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(1)
    return [rng.random((d, 6)) for d in tensor.shape]


def _seed(tensor, factors):
    return [mttkrp_coo(tensor, factors, m) for m in range(tensor.ndim)]


class TestWorkerCrashRecovery:
    def test_crash_recovers_bit_identically(self, tensor, factors):
        ref = _seed(tensor, factors)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "worker_crash", probability=1.0), seed=5
        )
        cfg = EngineConfig(shards=4, chunk=256)
        cache = PlanCache()
        events = EventLog()
        for mode in range(tensor.ndim):
            got = engine_mttkrp(
                tensor, factors, mode, "coo", cfg, cache,
                faults=inj, events=events,
            )
            assert np.array_equal(ref[mode], got)
        assert inj.injected == tensor.ndim  # one crash per launch
        retries = events.of_kind("shard_retry")
        assert len(retries) == tensor.ndim
        for ev in retries:
            assert "InjectedWorkerCrash" in ev.detail
            assert "re-executed serially" in ev.detail

    def test_retry_counter_increments(self, tensor, factors):
        inj = FaultInjector(
            FaultSpec("EXECUTE", "worker_crash", probability=1.0), seed=5
        )
        with telemetry_session() as tel:
            engine_mttkrp(
                tensor, factors, 0, "coo",
                EngineConfig(shards=4), PlanCache(), faults=inj,
            )
        assert tel.metrics.summary()["counters"]["engine.shard.retries"] >= 1

    def test_crash_on_genuinely_broken_shard_propagates(self, tensor, factors):
        """A shard whose *serial* re-execution also fails is not swallowed
        at the shard level — the exception reaches the caller (where the
        driver's replan-once recovery takes over)."""
        cache = PlanCache()
        cfg = EngineConfig(shards=4)
        plan = cache.plan(tensor, 0)
        streams = plan.shard_streams(cfg.shards)
        streams[0].cols[1][0] = 2**31  # out-of-range gather in shard 0
        with pytest.raises(IndexError):
            run_shards(
                streams, [np.asarray(f) for f in factors], 0,
                tensor.shape[0], 6, cfg,
            )


class TestSlowShardTimeout:
    def test_straggler_times_out_and_recovers(self, tensor, factors):
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "slow_shard", probability=1.0, magnitude=0.5),
            seed=2,
        )
        cfg = EngineConfig(shards=4, shard_timeout=0.05)
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", cfg, PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(ref, got)
        assert len(events.of_kind("shard_timeout")) == 1
        assert tel.metrics.summary()["counters"]["engine.shard.timeouts"] == 1

    def test_no_timeout_when_disabled(self, tensor, factors):
        """shard_timeout=0 disables straggler detection: the slow worker is
        simply awaited and the result is still exact."""
        ref = mttkrp_coo(tensor, factors, 0)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "slow_shard", probability=1.0, magnitude=0.05),
            seed=2,
        )
        events = EventLog()
        got = engine_mttkrp(
            tensor, factors, 0, "coo", EngineConfig(shards=4), PlanCache(),
            faults=inj, events=events,
        )
        assert np.array_equal(ref, got)
        assert events.of_kind("shard_timeout") == []

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="shard_timeout"):
            EngineConfig(shard_timeout=-1.0)


class TestCorruptPlanSelfHeal:
    def test_injected_corruption_heals_via_probe(self, tensor, factors):
        ref = mttkrp_coo(tensor, factors, 0)
        cache = PlanCache()
        cfg = EngineConfig()
        # Warm the cache, then let the injector corrupt it before lookup.
        assert np.array_equal(ref, engine_mttkrp(tensor, factors, 0, "coo", cfg, cache))
        inj = FaultInjector(
            FaultSpec("EXECUTE", "corrupt_plan", probability=1.0), seed=0
        )
        events = EventLog()
        got = engine_mttkrp(
            tensor, factors, 0, "coo", cfg, cache, faults=inj, events=events,
        )
        assert np.array_equal(ref, got)
        assert cache.repairs == 1
        assert len(events.of_kind("fault_injected")) == 1

    def test_probe_invisible_corruption_heals_via_replan_once(self, tensor, factors):
        """An out-of-range coordinate passes the structural probe but blows
        up in execution; the driver must evict, replan, and re-execute."""
        ref = mttkrp_coo(tensor, factors, 1)
        cache = PlanCache()
        cfg = EngineConfig()
        engine_mttkrp(tensor, factors, 1, "coo", cfg, cache)
        assert cache.corrupt(tensor, how="cols") > 0
        events = EventLog()
        got = engine_mttkrp(tensor, factors, 1, "coo", cfg, cache, events=events)
        assert np.array_equal(ref, got)
        assert cache.repairs == 1
        assert len(events.of_kind("plan_repaired")) == 1

    def test_repairs_counted_in_telemetry(self, tensor, factors):
        cache = PlanCache()
        cfg = EngineConfig()
        engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)
        cache.corrupt(tensor, how="bounds")
        with telemetry_session() as tel:
            engine_mttkrp(tensor, factors, 0, "coo", cfg, cache)
        assert tel.metrics.summary()["counters"]["engine.plan.repairs"] == 1

    def test_corrupt_without_cached_entry_is_noop(self, tensor):
        assert PlanCache().corrupt(tensor) == 0


class TestChaosDeterminism:
    def test_same_seed_same_campaign(self, tensor, factors):
        """The whole chaos campaign — which faults fire, on which shards —
        replays exactly from the injector seed."""
        def campaign():
            inj = FaultInjector(
                [
                    FaultSpec("EXECUTE", "worker_crash", probability=0.5),
                    FaultSpec("EXECUTE", "corrupt_plan", probability=0.3),
                ],
                seed=13,
            )
            events = EventLog()
            cache = PlanCache()
            cfg = EngineConfig(shards=3)
            for _ in range(3):
                for mode in range(tensor.ndim):
                    engine_mttkrp(
                        tensor, factors, mode, "coo", cfg, cache,
                        faults=inj, events=events,
                    )
            return [(e.kind, e.data.get("fault_kind"), e.data.get("shard"))
                    for e in events]

        assert campaign() == campaign()

    def test_injected_crash_exception_type(self):
        with pytest.raises(InjectedWorkerCrash):
            raise InjectedWorkerCrash("boom")


class TestHicooEnginePath:
    def test_bit_identical_to_seed_kernel(self, tensor, factors):
        """Satellite: hicoo routes through the cached serial per-block plan
        path and must reproduce mttkrp_hicoo bit for bit."""
        hicoo = HicooTensor.from_coo(tensor)
        cache = PlanCache()
        for mode in range(tensor.ndim):
            ref = mttkrp_hicoo(hicoo, factors, mode)
            got = engine_mttkrp(tensor, factors, mode, "hicoo", EngineConfig(), cache)
            assert np.array_equal(ref, got)
            # Second call hits the cached block plans, still exact.
            assert np.array_equal(ref, engine_mttkrp(
                tensor, factors, mode, "hicoo", EngineConfig(), cache
            ))
        assert cache.hits >= tensor.ndim


class TestShardedSegmentAccumulate:
    def test_bit_identical_to_seed(self):
        rng = np.random.default_rng(7)
        rows = rng.random((800, 5))
        targets = rng.integers(0, 61, 800)
        ref = segment_accumulate(rows, targets, 61)
        for shards in (1, 2, 3, 8):
            got = sharded_segment_accumulate(
                rows, targets, 61, EngineConfig(shards=shards, chunk=128)
            )
            assert np.array_equal(ref, got)

    def test_recovers_from_injected_crash(self):
        rng = np.random.default_rng(8)
        rows = rng.random((600, 4))
        targets = rng.integers(0, 37, 600)
        ref = segment_accumulate(rows, targets, 37)
        inj = FaultInjector(
            FaultSpec("EXECUTE", "worker_crash", probability=1.0), seed=4
        )
        events = EventLog()
        got = sharded_segment_accumulate(
            rows, targets, 37, EngineConfig(shards=4),
            faults=inj, events=events,
        )
        assert np.array_equal(ref, got)
        assert len(events.of_kind("shard_retry")) == 1

    def test_empty_input(self):
        out = sharded_segment_accumulate(
            np.zeros((0, 3)), np.zeros(0, dtype=np.int64), 5,
            EngineConfig(shards=4),
        )
        assert out.shape == (5, 3)
        assert not out.any()
