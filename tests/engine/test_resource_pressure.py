"""Resource-pressure resilience: budgets, OOM and shm-exhaustion injection.

Three layers, three speeds:

- :class:`TestSegmentPoolBudget` — pure pool mechanics (budget accounting,
  idle-segment trimming, :class:`ShmExhausted`); fast, runs in tier-1.
- :class:`TestThreadsOom` — the injected ``oom_worker`` fault on the
  in-process backend (a thread cannot be OOM-killed, so the fault raises
  ``MemoryError`` and the shard is redone serially, bit-identically).
- :class:`TestProcessPressure` — the real thing over worker processes:
  SIGKILL dressed as an OOM kill, per-worker RSS gauges, budget-breach
  recycling at shard boundaries, and shm-pressure transport downgrades.
  Marked ``pressure`` (excluded from tier-1 by addopts).

Every degraded path must stay bitwise identical to serial execution —
pressure changes *where* work runs, never what it computes.
"""

import numpy as np
import pytest

from repro.engine import (
    EngineConfig,
    PlanCache,
    engine_mttkrp,
    shutdown_backends,
)
from repro.engine.backends.shm import (
    SegmentPool,
    ShmExhausted,
    shm_available,
)
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.obs import telemetry_session
from repro.resilience import EventLog, FaultInjector, FaultSpec
from repro.resilience.events import TRANSPORT_DOWNGRADED, WORKER_RECYCLED
from repro.tensor.synthetic import random_sparse

RANK = 5


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((36, 28, 20), nnz=2200, seed=11)


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(4)
    return [rng.random((d, RANK)) for d in tensor.shape]


@pytest.fixture(scope="module", autouse=True)
def _reap_workers():
    yield
    shutdown_backends()


# --------------------------------------------------------------------- #
# SegmentPool budget mechanics (tier-1)
# --------------------------------------------------------------------- #
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestSegmentPoolBudget:
    def test_live_bytes_tracks_free_and_leased(self):
        pool = SegmentPool()
        try:
            a = pool.lease(1024)
            assert pool.live_bytes() >= 1024
            pool.release(a)
            # Released segments stay resident (that is the reuse win) and
            # still count against the budget.
            assert pool.live_bytes() >= 1024
        finally:
            pool.close()
        assert pool.live_bytes() == 0

    def test_budget_trims_idle_segments_before_refusing(self):
        with telemetry_session() as tel:
            pool = SegmentPool(budget_bytes=8192)
            try:
                idle = pool.lease(4096)
                pool.release(idle)
                # 4096 live + 8192 requested > 8192: the idle segment must
                # be trimmed to make room rather than the lease failing.
                big = pool.lease(8192)
                assert big is not idle
                assert pool.live_bytes() <= 8192
            finally:
                pool.close()
        assert tel.metrics.summary()["counters"]["engine.shm.trims"] == 1

    def test_budget_refuses_when_nothing_left_to_trim(self):
        pool = SegmentPool(budget_bytes=4096)
        try:
            held = pool.lease(4096)  # leased, not idle: cannot be trimmed
            with pytest.raises(ShmExhausted, match="memory budget"):
                pool.lease(4096)
            # The pool stays usable: releasing makes the next lease fit.
            pool.release(held)
            again = pool.lease(4096)
            assert again is held
        finally:
            pool.close()

    def test_oversized_request_refused_outright(self):
        pool = SegmentPool(budget_bytes=1024)
        try:
            with pytest.raises(ShmExhausted):
                pool.lease(4096)
        finally:
            pool.close()

    def test_fail_next_lease_is_one_shot(self):
        pool = SegmentPool()
        try:
            pool.fail_next_lease = True
            with pytest.raises(ShmExhausted, match="injected"):
                pool.lease(64)
            assert not pool.fail_next_lease
            lease = pool.lease(64)  # next lease succeeds normally
            assert lease.capacity >= 64
        finally:
            pool.close()

    def test_zero_budget_is_unbounded(self):
        pool = SegmentPool(budget_bytes=0)
        try:
            for _ in range(4):
                pool.lease(4096)
            assert pool.live_bytes() >= 4 * 4096
        finally:
            pool.close()


# --------------------------------------------------------------------- #
# oom_worker on the threads backend (tier-1, chaos-style)
# --------------------------------------------------------------------- #
@pytest.mark.chaos
class TestPressureEventGate:
    """``check_trace.py --require-pressure-events``: the CI proof that an
    injected pressure campaign actually exercised the degraded paths."""

    @pytest.fixture()
    def gate(self):
        import sys
        from pathlib import Path

        scripts = Path(__file__).resolve().parents[2] / "scripts"
        sys.path.insert(0, str(scripts))
        try:
            from check_trace import check_pressure_events
        finally:
            sys.path.pop(0)
        return check_pressure_events

    def test_pressure_event_passes(self, gate):
        records = [{"type": "event", "kind": "worker_recycled", "data": {}}]
        assert gate(records) == []

    def test_summary_counter_fallback(self, gate):
        """A degraded sink drops event records; the final counter snapshot
        is still accepted as evidence."""
        records = [{
            "type": "summary",
            "metrics": {"counters": {"engine.shm.downgrades": 2}},
        }]
        assert gate(records) == []

    def test_clean_trace_fails(self, gate):
        records = [
            {"type": "event", "kind": "shard_retry", "data": {}},
            {"type": "summary",
             "metrics": {"counters": {"engine.shard.retries": 1}}},
        ]
        problems = gate(records)
        assert len(problems) == 1
        assert "--require-pressure-events" in problems[0]

    def test_empty_trace_fails(self, gate):
        assert gate([]) != []


class TestThreadsOom:
    def test_oom_worker_redone_serially_bit_identical(self, tensor, factors):
        cfg = EngineConfig(shards=3, chunk=256, backend="threads")
        inj = FaultInjector(
            FaultSpec("EXECUTE", "oom_worker", probability=1.0), seed=9
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", cfg, PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        retries = events.of_kind("shard_retry")
        assert retries and "MemoryError" in retries[0].detail
        assert tel.metrics.summary()["counters"]["engine.shard.retries"] >= 1


# --------------------------------------------------------------------- #
# Real worker processes under pressure (excluded from tier-1)
# --------------------------------------------------------------------- #
@pytest.mark.pressure
@pytest.mark.skipif(not shm_available(), reason="POSIX shm unavailable")
class TestProcessPressure:
    def _cfg(self, **overrides):
        kw = dict(shards=3, chunk=256, backend="processes")
        kw.update(overrides)
        return EngineConfig(**kw)

    def test_oom_killed_worker_recovered_bit_identical(self, tensor, factors):
        inj = FaultInjector(
            FaultSpec("EXECUTE", "oom_worker", probability=1.0), seed=2
        )
        events = EventLog()
        got = engine_mttkrp(
            tensor, factors, 0, "coo", self._cfg(shm="off"), PlanCache(),
            faults=inj, events=events,
        )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        lost = events.of_kind("worker_lost")
        assert lost and any("OOM" in e.detail for e in lost)

    def test_rss_gauges_and_budget_recycling(self, tensor, factors):
        # A 1-byte budget: every worker's real RSS breaches it, so each
        # collected shard recycles its worker — and the answer is
        # untouched.
        cfg = self._cfg(shm="off", memory_budget_bytes=1)
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", cfg, PlanCache(), events=events,
            )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        recycled = events.of_kind(WORKER_RECYCLED)
        assert len(recycled) == 3
        assert all(e.data["rss"] > e.data["budget"] for e in recycled)
        summary = tel.metrics.summary()
        assert summary["counters"]["engine.proc.workers_recycled"] == 3
        assert summary["gauges"]["engine.proc.worker_rss"] > 0
        assert summary["gauges"]["engine.proc.worker_rss_peak"] > 0
        assert summary["gauges"]["engine.proc.memory_budget"] == 1.0

    def test_injected_shm_exhaustion_downgrades_transport(
        self, tensor, factors
    ):
        inj = FaultInjector(
            FaultSpec("EXECUTE", "shm_exhausted", probability=1.0), seed=6
        )
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", self._cfg(shm="on"), PlanCache(),
                faults=inj, events=events,
            )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        downgrades = events.of_kind(TRANSPORT_DOWNGRADED)
        assert downgrades and "pipe transport" in downgrades[0].detail
        counters = tel.metrics.summary()["counters"]
        assert counters["engine.shm.downgrades"] >= 1
        # The injected fault itself is on the audit trail.
        assert any(
            e.data.get("fault_kind") == "shm_exhausted"
            for e in events.of_kind("fault_injected")
        )

    def test_memory_budget_downgrades_shm_dispatch(self, tensor, factors):
        # A budget far below the factor-matrix footprint: the pre-dispatch
        # lease block must fail and the whole dispatch fall back to pipes.
        cfg = self._cfg(shm="on", memory_budget_bytes=64)
        events = EventLog()
        got = engine_mttkrp(
            tensor, factors, 0, "coo", cfg, PlanCache(), events=events,
        )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        assert events.of_kind(TRANSPORT_DOWNGRADED)

    def test_clean_run_has_zero_pressure_events(self, tensor, factors):
        events = EventLog()
        with telemetry_session() as tel:
            got = engine_mttkrp(
                tensor, factors, 0, "coo", self._cfg(), PlanCache(),
                events=events,
            )
        assert np.array_equal(got, mttkrp_coo(tensor, factors, 0))
        assert not events.of_kind(WORKER_RECYCLED)
        assert not events.of_kind(TRANSPORT_DOWNGRADED)
        counters = tel.metrics.summary()["counters"]
        assert "engine.shm.downgrades" not in counters
        assert "engine.proc.workers_recycled" not in counters
