"""The SPLATT-like and PLANC-like CPU baselines."""

import pytest

from repro.baselines.planc import planc_dense_tf, planc_sparse_tf
from repro.baselines.splatt import splatt_cstf
from repro.core.trace import PHASES
from repro.machine.analytic import TensorStats
from repro.tensor.dense import DenseTensor
from repro.tensor.synthetic import planted_sparse_cp


@pytest.fixture(scope="module")
def tensor():
    t, _ = planted_sparse_cp((18, 14, 10), rank=3, factor_sparsity=0.4, seed=13)
    return t


class TestSplatt:
    def test_converges_on_planted(self, tensor):
        res = splatt_cstf(tensor, rank=3, max_iters=12, compute_fit=True, seed=0)
        assert res.fits[-1] > 0.8

    def test_runs_on_cpu_model(self, tensor):
        res = splatt_cstf(tensor, rank=3, max_iters=1)
        assert res.executor.device.kind == "cpu"

    def test_all_phases_present(self, tensor):
        res = splatt_cstf(tensor, rank=3, max_iters=1)
        for phase in PHASES:
            assert res.timeline.seconds(phase) > 0

    def test_analytic_mode(self):
        stats = TensorStats.from_dims((6066, 5699, 244_268, 1176), 54_202_099)
        res = splatt_cstf(stats, rank=32, max_iters=1)
        assert res.per_iteration_seconds() > 0
        assert res.kruskal is None

    def test_matches_generic_driver_semantics(self, tensor):
        """SPLATT wrapper = cstf with CSF + generic ADMM + 2-norm; the fit
        trajectory must match the underlying driver configured equally."""
        from repro.core.config import CstfConfig
        from repro.core.cstf import cstf
        from repro.updates.admm import AdmmUpdate

        a = splatt_cstf(tensor, rank=3, max_iters=3, compute_fit=True, seed=2)
        b = cstf(
            tensor,
            CstfConfig(
                rank=3, max_iters=3, update=AdmmUpdate(inner_iters=10), device="cpu",
                mttkrp_format="csf", normalize="2", compute_fit=True, seed=2,
            ),
        )
        assert a.fits == pytest.approx(b.fits)


class TestPlancSparse:
    def test_uses_alto(self, tensor):
        res = planc_sparse_tf(tensor, rank=3, update="mu", max_iters=2, compute_fit=True, seed=0)
        assert len(res.fits) == 2

    @pytest.mark.parametrize("method", ["admm", "mu", "hals"])
    def test_all_update_methods(self, tensor, method):
        res = planc_sparse_tf(tensor, rank=3, update=method, max_iters=2, compute_fit=True)
        assert res.fits[-1] > 0.0


class TestPlancDense:
    def test_concrete_dense_factorization(self, rng):
        import numpy as np

        # A nonnegative low-rank dense tensor.
        a, b, c = rng.random((8, 2)), rng.random((7, 2)), rng.random((6, 2))
        dense = np.einsum("ir,jr,kr->ijk", a, b, c)
        res = planc_dense_tf(DenseTensor(dense), rank=2, update="hals", max_iters=30, seed=1)
        recon = res.kruskal.full()
        rel_err = np.linalg.norm(recon - dense) / np.linalg.norm(dense)
        assert rel_err < 0.05

    def test_analytic_shape_input(self):
        res = planc_dense_tf((400, 200, 100, 50), rank=32, update="admm", max_iters=1)
        assert res.kruskal is None
        assert res.timeline.seconds("MTTKRP") > 0

    def test_dense_mttkrp_dominates(self):
        """Figure 1's DenseTF shape target at the paper's synthetic size."""
        res = planc_dense_tf((400, 200, 100, 50), rank=32, update="admm", max_iters=1)
        tl = res.timeline
        assert tl.seconds("MTTKRP") > tl.seconds("UPDATE")
        assert tl.seconds("MTTKRP") > 0.5 * tl.total_seconds()
