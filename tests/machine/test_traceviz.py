"""Chrome-trace export of the simulated kernel timeline."""

import json

import numpy as np
import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.machine.executor import Executor
from repro.machine.traceviz import timeline_to_chrome_trace, write_chrome_trace
from repro.tensor.synthetic import random_sparse


@pytest.fixture
def traced_executor(rng):
    ex = Executor("a100", keep_records=True)
    h = rng.random((32, 4))
    with ex.phase("GRAM"):
        ex.gram(h)
    with ex.phase("UPDATE"):
        ex.add(h, h)
        ex.norm_sq(h)
    return ex


class TestTrace:
    def test_event_per_record(self, traced_executor):
        trace = timeline_to_chrome_trace(traced_executor)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 3
        assert events[0]["name"] == "dsyrk_gram"

    def test_events_sequential_nonoverlapping(self, traced_executor):
        trace = timeline_to_chrome_trace(traced_executor)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        end = 0.0
        for e in events:
            assert e["ts"] >= end - 1e-6
            end = e["ts"] + e["dur"]

    def test_durations_match_timeline(self, traced_executor):
        trace = timeline_to_chrome_trace(traced_executor)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        total_us = sum(e["dur"] for e in events)
        assert total_us == pytest.approx(
            traced_executor.timeline.total_seconds() * 1e6, rel=1e-3
        )

    def test_phase_tracks_named(self, traced_executor):
        trace = timeline_to_chrome_trace(traced_executor)
        names = {
            e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
        }
        assert {"GRAM", "UPDATE"} <= names

    def test_requires_retained_records(self):
        with pytest.raises(ValueError, match="keep_records"):
            timeline_to_chrome_trace(Executor("a100"))

    def test_write_roundtrip(self, traced_executor, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced_executor, path)
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["device"] == "A100"
        assert loaded["otherData"]["simulated"] is True

    def test_full_driver_trace(self):
        """A whole cSTF run produces a well-formed multi-phase trace."""
        t = random_sparse((15, 12, 9), nnz=150, seed=0)
        from repro.machine.executor import Executor as Ex

        # Run the driver with record retention by patching the config path:
        # cstf builds its own executor, so trace at the update level instead.
        ex = Ex("h100", keep_records=True)
        rng = np.random.default_rng(0)
        from repro.kernels.gram import gram_chain
        from repro.kernels.mttkrp_coo import mttkrp_coo
        from repro.updates.admm import cuadmm

        factors = [rng.random((d, 3)) for d in t.shape]
        update = cuadmm(inner_iters=10)
        state = update.init_state(t.shape, 3)
        with ex.phase("UPDATE"):
            update.update(ex, 0, mttkrp_coo(t, factors, 0), gram_chain(factors, 0),
                          factors[0], state)
        trace = timeline_to_chrome_trace(ex)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        # 10 inner iterations × 4+ kernels plus setup.
        assert len(events) > 40
        assert any(e["name"] == "fused_auxiliary" for e in events)
