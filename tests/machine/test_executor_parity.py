"""Exhaustive symbolic/concrete cost-parity across every executor op.

The analytic (paper-scale) mode is only valid if replaying an op sequence
on shape-only arrays charges exactly what the concrete run charges. The
basic ops are covered in test_executor.py; this file covers the rest —
solves, fused kernels, prox variants — and cross-checks whole update
methods on every device.
"""

import numpy as np
import pytest

from repro.linalg.proximal import get_proximal
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray
from repro.updates.admm import AdmmUpdate, cuadmm
from repro.updates.als import AlsUpdate
from repro.updates.apg import ApgUpdate
from repro.updates.blocked_admm import BlockedAdmmUpdate
from repro.updates.hals import HalsUpdate
from repro.updates.mu import MuUpdate

ROWS, RANK = 64, 6


def _concrete_operands(seed=0):
    rng = np.random.default_rng(seed)
    h = rng.random((ROWS, RANK))
    s = rng.random((RANK, RANK))
    s = s @ s.T + RANK * np.eye(RANK)
    return h, s


def _sym_operands():
    return SymArray((ROWS, RANK)), SymArray((RANK, RANK))


OPS = {
    "gemv": lambda ex, h, s: ex.gemv(h, s[:, 0] if isinstance(s, np.ndarray) else SymArray((RANK,))),
    "trsm": lambda ex, h, s: ex.trsm(
        np.linalg.cholesky(s) if isinstance(s, np.ndarray) else s, h.T
    ),
    "cholesky": lambda ex, h, s: ex.cholesky(s),
    "spd_inverse": lambda ex, h, s: ex.spd_inverse(
        np.linalg.cholesky(s) if isinstance(s, np.ndarray) else s
    ),
    "cholesky_solve": lambda ex, h, s: ex.cholesky_solve(
        np.linalg.cholesky(s) if isinstance(s, np.ndarray) else s, h.T
    ),
    "prox_nonneg": lambda ex, h, s: ex.prox(get_proximal("nonneg"), h, 1.0),
    "prox_l1": lambda ex, h, s: ex.prox(get_proximal("l1"), h, 2.0),
    "elementwise_div": lambda ex, h, s: ex.elementwise_div(h, h, eps=1e-12),
    "scale": lambda ex, h, s: ex.scale(2.0, h),
    "clip_min": lambda ex, h, s: ex.clip_min(h),
    "col_scale": lambda ex, h, s: ex.col_scale(
        h, np.ones(RANK) if isinstance(h, np.ndarray) else SymArray((RANK,))
    ),
    "fused_prox": lambda ex, h, s: ex.fused_prox_primal(get_proximal("nonneg"), h, h, 1.0),
    "fused_dual": lambda ex, h, s: ex.fused_dual_update(h, h, h, h),
    "norm_sq": lambda ex, h, s: ex.norm_sq(h),
}


class TestOpParity:
    @pytest.mark.parametrize("name", sorted(OPS))
    @pytest.mark.parametrize("device", ["a100", "h100", "cpu"])
    def test_symbolic_equals_concrete_cost(self, name, device):
        op = OPS[name]
        ex_c = Executor(device)
        h, s = _concrete_operands()
        op(ex_c, h, s)
        ex_s = Executor(device)
        hs, ss = _sym_operands()
        op(ex_s, hs, ss)
        assert ex_s.timeline.total_seconds() == pytest.approx(
            ex_c.timeline.total_seconds(), rel=1e-12
        ), name
        assert ex_s.timeline.launch_count == ex_c.timeline.launch_count, name


UPDATES = {
    "admm": lambda: AdmmUpdate(inner_iters=3),
    "admm_of": lambda: AdmmUpdate(inner_iters=3, fuse_ops=True),
    "admm_pi": lambda: AdmmUpdate(inner_iters=3, preinvert=True),
    "cuadmm": lambda: cuadmm(inner_iters=3),
    "blocked_admm": lambda: BlockedAdmmUpdate(inner_iters=3),
    "hals": lambda: HalsUpdate(sweeps=2),
    "mu": lambda: MuUpdate(iters=2),
    "als": AlsUpdate,
    "apg": lambda: ApgUpdate(inner_iters=3),
}


class TestUpdateParity:
    @pytest.mark.parametrize("name", sorted(UPDATES))
    @pytest.mark.parametrize("device", ["h100", "cpu"])
    def test_whole_update_cost_parity(self, name, device):
        update = UPDATES[name]()
        h, s = _concrete_operands(seed=1)
        m = np.abs(_concrete_operands(seed=2)[0])

        ex_c = Executor(device)
        state = update.init_state((ROWS,), RANK)
        update.update(ex_c, 0, m, s, np.abs(h), state)

        ex_s = Executor(device)
        update.update(ex_s, 0, SymArray((ROWS, RANK)), SymArray((RANK, RANK)),
                      SymArray((ROWS, RANK)), {})
        assert ex_s.timeline.total_seconds() == pytest.approx(
            ex_c.timeline.total_seconds(), rel=1e-12
        ), (name, device)
