"""TensorStats and the analytic MTTKRP cost records."""

import numpy as np
import pytest

from repro.machine.analytic import MTTKRP_LOCALITY, TensorStats, charge_mttkrp
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray
from repro.tensor.synthetic import random_sparse


class TestFromCoo:
    def test_exact_stats(self, small4):
        stats = TensorStats.from_coo(small4)
        assert stats.shape == small4.shape
        assert stats.nnz == small4.nnz
        for m in range(small4.ndim):
            assert stats.distinct[m] == small4.distinct_mode_indices(m)

    def test_csf_levels_match_tree(self, small4):
        from repro.tensor.csf import CsfTensor

        stats = TensorStats.from_coo(small4)
        levels = CsfTensor.from_coo(small4, root_mode=0).level_sizes()
        assert list(stats.csf_level_sizes) == [float(s) for s in levels]


class TestFromDims:
    def test_saturated_modes(self):
        # nnz >> dim: every index should appear.
        stats = TensorStats.from_dims((10, 1000000), nnz=100000)
        assert stats.distinct[0] == pytest.approx(10.0)
        assert stats.distinct[1] == pytest.approx(1000000 * (1 - np.exp(-0.1)), rel=0.01)

    def test_estimate_close_to_exact(self):
        t = random_sparse((400, 300, 200), nnz=5000, seed=0)
        est = TensorStats.from_dims(t.shape, t.nnz)
        exact = TensorStats.from_coo(t)
        for m in range(3):
            assert est.distinct[m] == pytest.approx(exact.distinct[m], rel=0.1)

    def test_single_block_small_tensor(self):
        stats = TensorStats.from_dims((100, 100, 100), nnz=1000)
        assert stats.num_blocks == 1

    def test_blocks_grow_with_index_space(self):
        big = TensorStats.from_dims((1 << 25, 1 << 25, 1 << 25), nnz=10**6)
        assert big.num_blocks > 1

    def test_density(self):
        stats = TensorStats.from_dims((10, 10), nnz=20)
        assert stats.density() == pytest.approx(0.2)

    def test_negative_nnz_rejected(self):
        with pytest.raises(ValueError):
            TensorStats.from_dims((4, 4), nnz=-1)


class TestChargeMttkrp:
    @pytest.fixture
    def stats(self):
        return TensorStats.from_dims((50000, 40000, 30000), nnz=2_000_000)

    @pytest.mark.parametrize("fmt", ["blco", "csf", "alto", "coo"])
    def test_positive_time_all_formats(self, stats, fmt):
        ex = Executor("a100")
        seconds = charge_mttkrp(ex, stats, 32, 0, fmt)
        assert seconds > 0
        assert ex.timeline.seconds(ex.current_phase) >= 0

    def test_alto_cheaper_than_coo(self, stats):
        """ALTO stores one index word per nonzero vs ndim for COO and has a
        tighter locality window — it must never be slower."""
        ex_alto, ex_coo = Executor("cpu"), Executor("cpu")
        t_alto = charge_mttkrp(ex_alto, stats, 32, 0, "alto")
        t_coo = charge_mttkrp(ex_coo, stats, 32, 0, "coo")
        assert t_alto < t_coo

    def test_cost_scales_with_rank(self, stats):
        ex16, ex64 = Executor("a100"), Executor("a100")
        t16 = charge_mttkrp(ex16, stats, 16, 0, "blco")
        t64 = charge_mttkrp(ex64, stats, 64, 0, "blco")
        assert t64 > 1.5 * t16

    def test_unknown_format_rejected(self, stats):
        with pytest.raises(ValueError, match="format"):
            charge_mttkrp(Executor("a100"), stats, 32, 0, "hicoo")

    def test_mode_out_of_range(self, stats):
        with pytest.raises(ValueError):
            charge_mttkrp(Executor("a100"), stats, 32, 5, "blco")

    def test_short_mode_contention_on_gpu(self):
        """The VAST effect: accumulating into a 2-long mode serializes GPU
        atomics, making that mode far slower than a long mode of the same
        tensor."""
        stats = TensorStats.from_dims((165427, 11374, 2), nnz=26_021_945)
        ex_long, ex_short = Executor("a100"), Executor("a100")
        t_long = charge_mttkrp(ex_long, stats, 32, 0, "blco")
        t_short = charge_mttkrp(ex_short, stats, 32, 2, "blco")
        assert t_short > 3 * t_long

    def test_locality_table_complete(self):
        assert set(MTTKRP_LOCALITY) == {"blco", "alto", "csf", "coo"}


class TestSymArray:
    def test_shape_and_size(self):
        a = SymArray((3, 4))
        assert a.shape == (3, 4)
        assert a.size == 12
        assert a.ndim == 2

    def test_transpose_and_copy(self):
        a = SymArray((3, 4))
        assert a.T.shape == (4, 3)
        assert a.copy().shape == a.shape

    def test_varargs_construction(self):
        assert SymArray(5, 6).shape == (5, 6)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            SymArray((0, 3))
