"""Device-memory footprints and out-of-core MTTKRP streaming."""

import pytest

from repro.data.frostt import FROSTT_TABLE2, get_dataset
from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.machine.executor import Executor
from repro.machine.memory import (
    DEVICE_MEMORY_BYTES,
    charge_out_of_core_mttkrp,
    factor_bytes,
    fits_on_device,
    footprint,
    tensor_bytes,
)


class TestFootprints:
    def test_blco_bytes_two_words_per_nnz(self):
        stats = TensorStats.from_dims((100, 100, 100), nnz=1000)
        assert tensor_bytes(stats, "blco") == pytest.approx(1000 * 16, rel=0.01)

    def test_coo_larger_than_blco(self):
        stats = get_dataset("nell1").stats()
        assert tensor_bytes(stats, "coo") > tensor_bytes(stats, "blco")

    def test_factor_bytes_scale_with_rank(self):
        stats = get_dataset("uber").stats()
        assert factor_bytes(stats, 64) == pytest.approx(2 * factor_bytes(stats, 32))

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            tensor_bytes(get_dataset("uber").stats(), "hicoo2")

    def test_all_paper_tensors_fit_at_r64(self):
        """Consistency with the paper: every Table 2 tensor ran resident on
        the 80 GB devices at the largest evaluated rank."""
        for ds in FROSTT_TABLE2:
            assert fits_on_device(ds.stats(), 64), ds.name

    def test_amazon_would_not_fit_on_a_smaller_gpu(self):
        stats = get_dataset("amazon").stats()
        assert not fits_on_device(stats, 64, capacity=24e9)  # a 24 GB card

    def test_utilization(self):
        fp = footprint(get_dataset("amazon").stats(), 32)
        assert 0.0 < fp.utilization < 1.0
        assert fp.total == fp.tensor + fp.factors


class TestOutOfCore:
    def test_resident_equals_plain_charge(self):
        stats = get_dataset("delicious").stats()
        ex_a, ex_b = Executor("a100"), Executor("a100")
        a = charge_out_of_core_mttkrp(ex_a, stats, 32, 0)
        b = charge_mttkrp(ex_b, stats, 32, 0, "blco")
        assert a == pytest.approx(b)

    def test_overlapped_streaming_can_hide_pcie(self):
        """Amazon's MTTKRP is long enough to hide the PCIe stream — the
        BLCO paper's out-of-memory overlap result."""
        stats = get_dataset("amazon").stats()
        ex = Executor("a100")
        oc = charge_out_of_core_mttkrp(ex, stats, 64, 0, capacity=20e9)
        ex2 = Executor("a100")
        resident = charge_mttkrp(ex2, stats, 64, 0, "blco")
        assert oc == pytest.approx(resident)

    def test_slow_link_exposes_streaming(self):
        """With a slow host link the transfer can no longer hide."""
        stats = get_dataset("amazon").stats()
        ex = Executor("a100")
        oc = charge_out_of_core_mttkrp(
            ex, stats, 16, 0, capacity=16e9, pcie_bandwidth=2e9
        )
        ex2 = Executor("a100")
        resident = charge_mttkrp(ex2, stats, 16, 0, "blco")
        assert oc > 1.5 * resident
        assert "mttkrp_host_stream" in ex.timeline.kernel_seconds

    def test_cpu_never_streams(self):
        stats = get_dataset("amazon").stats()
        ex = Executor("cpu")
        oc = charge_out_of_core_mttkrp(ex, stats, 32, 0, fmt="csf", capacity=1e9)
        assert "mttkrp_host_stream" not in ex.timeline.kernel_seconds
        assert oc > 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            footprint(get_dataset("uber").stats(), 32, capacity=0)

    def test_default_capacity_is_table1(self):
        assert DEVICE_MEMORY_BYTES == 80e9
