"""Cross-device properties of the cost model.

These pin down the *relations between devices* that the paper's comparisons
rest on, independent of any single calibration value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.costmodel import kernel_seconds
from repro.machine.counters import KernelRecord
from repro.machine.executor import Executor
from repro.machine.spec import A100, H100, ICELAKE_XEON
from repro.machine.symbolic import SymArray
from repro.updates.admm import AdmmUpdate, cuadmm


def _stream(bytes_read, pw):
    return KernelRecord(
        name="k", phase="P", flops=0.0, bytes_read=bytes_read, bytes_written=0.0,
        parallel_work=pw,
    )


class TestStreamingRelations:
    @given(st.floats(min_value=1e6, max_value=1e12))
    @settings(max_examples=40, deadline=None)
    def test_gpus_beat_cpu_on_saturated_streams(self, nbytes):
        """At full occupancy, both GPUs out-stream the CPU (the 10x HBM
        advantage of Table 1)."""
        rec = _stream(nbytes, 1e10)
        assert kernel_seconds(A100, rec) < kernel_seconds(ICELAKE_XEON, rec)
        assert kernel_seconds(H100, rec) < kernel_seconds(ICELAKE_XEON, rec)

    def test_cpu_beats_gpu_on_tiny_streams(self):
        """Launch overhead + occupancy: a tiny kernel is faster on the CPU."""
        rec = _stream(1e3, 1e2)
        assert kernel_seconds(ICELAKE_XEON, rec) < kernel_seconds(A100, rec)

    @given(st.floats(min_value=1e5, max_value=1e11), st.floats(min_value=1e3, max_value=1e10))
    @settings(max_examples=40, deadline=None)
    def test_h100_never_slower_than_a100_streaming(self, nbytes, pw):
        """Same HBM bandwidth, higher stream efficiency and lower overheads:
        the H100 dominates the A100 on pure streaming work."""
        rec = _stream(nbytes, pw)
        assert kernel_seconds(H100, rec) <= kernel_seconds(A100, rec) * 1.15


class TestUpdateRelations:
    def _seconds(self, update, device, rows):
        ex = Executor(device)
        update.update(ex, 0, SymArray((rows, 32)), SymArray((32, 32)),
                      SymArray((rows, 32)), {})
        return ex.timeline.total_seconds()

    @pytest.mark.parametrize("rows", [10_000, 100_000, 1_000_000, 10_000_000])
    def test_gpu_admm_advantage_grows_with_rows(self, rows):
        """Longer factor matrices widen the GPU's ADMM advantage — the
        monotone mechanism behind Figures 5–8."""
        update = cuadmm(inner_iters=10)
        ratio = self._seconds(update, "cpu", rows) / self._seconds(update, "h100", rows)
        if rows >= 1_000_000:
            assert ratio > 5.0
        small_ratio = self._seconds(update, "cpu", 1_000) / self._seconds(
            update, "h100", 1_000
        )
        assert ratio >= small_ratio * 0.9

    def test_fusion_helps_both_but_blocking_is_the_cpu_answer(self):
        """Section 4.2: fusion reduces traffic on both devices, but the
        CPU's own remedy — blockwise reformulation — beats plain fusion
        there, while being pointless on the GPU."""
        from repro.updates.blocked_admm import BlockedAdmmUpdate

        plain = AdmmUpdate(inner_iters=10)
        fused = AdmmUpdate(inner_iters=10, fuse_ops=True)
        blocked = BlockedAdmmUpdate(inner_iters=10)
        rows = 2_000_000
        gpu_gain = self._seconds(plain, "h100", rows) / self._seconds(fused, "h100", rows)
        cpu_fused_gain = self._seconds(plain, "cpu", rows) / self._seconds(fused, "cpu", rows)
        cpu_blocked_gain = self._seconds(plain, "cpu", rows) / self._seconds(blocked, "cpu", rows)
        assert gpu_gain > 1.1
        assert cpu_fused_gain > 1.1
        assert cpu_blocked_gain > cpu_fused_gain

    def test_admm_iteration_cost_linear_in_rows(self):
        """Bandwidth-bound regime: doubling rows ≈ doubles simulated time."""
        update = cuadmm(inner_iters=10)
        t1 = self._seconds(update, "h100", 4_000_000)
        t2 = self._seconds(update, "h100", 8_000_000)
        assert t2 / t1 == pytest.approx(2.0, rel=0.15)


class TestEndToEndRelations:
    def test_update_share_grows_with_factor_rows(self):
        """Fix nnz, grow the mode lengths: the UPDATE share of a CPU cSTF
        iteration must grow — Figure 1's dense→sparse transition replayed
        as a controlled sweep."""
        from repro.core import cstf
        from repro.machine.analytic import TensorStats

        shares = []
        for scale in (1, 20, 400):
            stats = TensorStats.from_dims(
                (5_000 * scale, 4_000 * scale, 3_000 * scale), nnz=20_000_000
            )
            res = cstf(stats, rank=32, update="admm", device="cpu",
                       mttkrp_format="csf", max_iters=1)
            tl = res.timeline
            shares.append(
                tl.seconds("UPDATE")
                / (tl.seconds("UPDATE") + tl.seconds("MTTKRP"))
            )
        # The dense-like regime is MTTKRP-bound; growing the factor rows
        # flips the bottleneck to UPDATE and keeps it there.
        assert shares[0] < shares[1]
        assert min(shares[1:]) > 0.5
