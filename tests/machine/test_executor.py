"""Executor ops: numerics correctness and symbolic/concrete record parity."""

import numpy as np
import pytest

from repro.linalg.proximal import get_proximal
from repro.machine.executor import Executor
from repro.machine.symbolic import SymArray, is_symbolic


@pytest.fixture
def ex():
    return Executor("a100", keep_records=True)


@pytest.fixture
def abc(rng):
    return rng.random((12, 5)), rng.random((12, 5)), rng.random((5, 5))


class TestElementwiseOps:
    def test_copy(self, ex, abc):
        a, _, _ = abc
        out = ex.copy(a)
        assert np.array_equal(out, a)
        assert out is not a

    def test_geam(self, ex, abc):
        a, b, _ = abc
        assert np.allclose(ex.geam(2.0, a, -1.0, b), 2 * a - b)

    def test_add_sub(self, ex, abc):
        a, b, _ = abc
        assert np.allclose(ex.add(a, b), a + b)
        assert np.allclose(ex.sub(a, b), a - b)

    def test_hadamard(self, ex, abc):
        a, b, _ = abc
        assert np.allclose(ex.hadamard(a, b), a * b)

    def test_elementwise_div(self, ex, abc):
        a, b, _ = abc
        assert np.allclose(ex.elementwise_div(a, b, eps=0.5), a / (b + 0.5))

    def test_scale_clip(self, ex, abc):
        a, _, _ = abc
        assert np.allclose(ex.scale(3.0, a), 3 * a)
        assert (ex.clip_min(a - 0.5, 0.0) >= 0).all()

    def test_col_scale(self, ex, abc):
        a, _, _ = abc
        lam = np.arange(1.0, 6.0)
        assert np.allclose(ex.col_scale(a, lam), a * lam)

    def test_normalize_columns(self, ex, abc):
        a, _, _ = abc
        normed, lam = ex.normalize_columns(a, kind="2")
        assert np.allclose(normed * lam, a)

    def test_norm_sq(self, ex, abc):
        a, _, _ = abc
        assert ex.norm_sq(a) == pytest.approx(np.linalg.norm(a) ** 2)

    def test_prox(self, ex):
        x = np.array([[-1.0, 2.0]])
        assert np.allclose(ex.prox(get_proximal("nonneg"), x, 1.0), [[0.0, 2.0]])


class TestBlasOps:
    def test_gemm(self, ex, abc):
        a, _, s = abc
        assert np.allclose(ex.gemm(a, s), a @ s)

    def test_gemm_shape_mismatch(self, ex, abc):
        a, b, _ = abc
        with pytest.raises(ValueError, match="mismatch"):
            ex.gemm(a, b)

    def test_gemv(self, ex, abc):
        a, _, _ = abc
        x = np.arange(5.0)
        assert np.allclose(ex.gemv(a, x), a @ x)

    def test_gram(self, ex, abc):
        a, _, _ = abc
        assert np.allclose(ex.gram(a), a.T @ a)

    def test_cholesky_and_solve(self, ex, rng):
        s = rng.random((5, 5))
        s = s @ s.T + 5 * np.eye(5)
        l_factor = ex.cholesky(s)
        rhs = rng.random((5, 8))
        x = ex.cholesky_solve(l_factor, rhs)
        assert np.allclose(s @ x, rhs)

    def test_spd_inverse(self, ex, rng):
        s = rng.random((4, 4))
        s = s @ s.T + 4 * np.eye(4)
        inv = ex.spd_inverse(ex.cholesky(s))
        assert np.allclose(s @ inv, np.eye(4), atol=1e-10)

    def test_trsm_transpose_flag(self, ex, rng):
        s = rng.random((4, 4))
        s = s @ s.T + 4 * np.eye(4)
        l_factor = np.linalg.cholesky(s)
        b = rng.random((4, 3))
        y = ex.trsm(l_factor, b, lower=True, transpose=False)
        assert np.allclose(l_factor @ y, b)
        z = ex.trsm(l_factor, b, lower=True, transpose=True)
        assert np.allclose(l_factor.T @ z, b)


class TestFusedKernels:
    def test_fused_auxiliary(self, ex, abc):
        a, b, _ = abc
        m = np.ones_like(a)
        assert np.allclose(ex.fused_auxiliary(m, a, b, 2.0), m + 2.0 * (a + b))

    def test_fused_prox_primal(self, ex, abc):
        a, b, _ = abc
        out = ex.fused_prox_primal(get_proximal("nonneg"), a, b, 1.0)
        assert np.allclose(out, np.maximum(a - b, 0.0))

    def test_fused_dual_update(self, ex, abc):
        a, b, _ = abc
        h = np.abs(a)
        h_prev = np.abs(b)
        u = 0.1 * np.ones_like(a)
        u_new, ndh, nh, ndp, nu = ex.fused_dual_update(u, h, a, h_prev)
        dh = h - a
        assert np.allclose(u_new, u + dh)
        assert ndh == pytest.approx(float(np.sum(dh * dh)))
        assert nh == pytest.approx(float(np.sum(h * h)))
        assert ndp == pytest.approx(float(np.sum((h - h_prev) ** 2)))
        assert nu == pytest.approx(float(np.sum(u_new * u_new)))


class TestSymbolicMode:
    def test_ops_return_symbolic(self, ex):
        a = SymArray((10, 4))
        b = SymArray((10, 4))
        assert is_symbolic(ex.add(a, b))
        assert is_symbolic(ex.gemm(a, SymArray((4, 4))))
        assert is_symbolic(ex.cholesky(SymArray((4, 4))))
        assert is_symbolic(ex.copy(a))
        assert ex.norm_sq(a) != ex.norm_sq(a)  # NaN

    def test_normalize_symbolic(self, ex):
        normed, lam = ex.normalize_columns(SymArray((10, 4)))
        assert is_symbolic(normed) and is_symbolic(lam)
        assert lam.shape == (4,)

    def test_fused_dual_symbolic(self, ex):
        a = SymArray((10, 4))
        u_new, *norms = ex.fused_dual_update(a, a, a, a)
        assert is_symbolic(u_new)
        assert all(n != n for n in norms)

    def test_symbolic_and_concrete_charge_identically(self):
        """The core analytic-mode guarantee: running an op symbolically
        charges exactly the same simulated time as running it concretely at
        the same shape."""
        rng = np.random.default_rng(0)
        for make in (
            lambda e, c: e.add(*c[:2]),
            lambda e, c: e.hadamard(*c[:2]),
            lambda e, c: e.gemm(c[0], c[2]),
            lambda e, c: e.gram(c[0]),
            lambda e, c: e.copy(c[0]),
            lambda e, c: e.normalize_columns(c[0]),
            lambda e, c: e.fused_auxiliary(c[0], c[1], c[1], 1.0),
        ):
            ex_c = Executor("h100")
            ex_s = Executor("h100")
            a = rng.random((30, 6))
            b = rng.random((30, 6))
            s = rng.random((6, 6))
            make(ex_c, (a, b, s))
            make(ex_s, (SymArray((30, 6)), SymArray((30, 6)), SymArray((6, 6))))
            assert ex_c.timeline.total_seconds() == pytest.approx(
                ex_s.timeline.total_seconds()
            )


class TestPhases:
    def test_phase_tagging(self, ex, abc):
        a, b, _ = abc
        with ex.phase("ALPHA"):
            ex.add(a, b)
            with ex.phase("BETA"):
                ex.add(a, b)
            ex.add(a, b)
        assert ex.timeline.seconds("ALPHA") > 0
        assert ex.timeline.seconds("BETA") > 0
        assert ex.current_phase == "UNPHASED"

    def test_records_carry_phase(self, ex, abc):
        a, b, _ = abc
        with ex.phase("P1"):
            ex.add(a, b)
        assert ex.timeline.records[-1].phase == "P1"
