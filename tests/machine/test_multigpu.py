"""Multi-GPU scaling model (the paper's distributed-memory future work)."""

import pytest

from repro.data.frostt import get_dataset
from repro.machine.analytic import TensorStats
from repro.machine.multigpu import Interconnect, MultiGpuModel


class TestInterconnect:
    def test_single_gpu_free(self):
        link = Interconnect()
        assert link.all_reduce_seconds(10**6, 1) == 0.0
        assert link.all_gather_seconds(10**6, 1) == 0.0

    def test_all_reduce_volume_scaling(self):
        link = Interconnect(latency=0.0)
        # Ring all-reduce moves 2(n-1)/n of the payload: n=2 -> 1x, n=4 -> 1.5x.
        t2 = link.all_reduce_seconds(10**6, 2)
        t4 = link.all_reduce_seconds(10**6, 4)
        assert t4 / t2 == pytest.approx(1.5)

    def test_latency_grows_with_parties(self):
        link = Interconnect(bandwidth=1e15, latency=1e-6)
        assert link.all_reduce_seconds(1, 8) > link.all_reduce_seconds(1, 2)


class TestMultiGpuModel:
    @pytest.fixture(scope="class")
    def model(self):
        return MultiGpuModel("a100")

    def test_requires_gpu(self):
        with pytest.raises(ValueError, match="GPU"):
            MultiGpuModel("cpu")

    def test_one_gpu_matches_single_device_order(self, model):
        """n=1 has zero communication and a positive phase breakdown."""
        stats = get_dataset("delicious").stats()
        est = model.estimate(stats, 32, 1)
        assert est.communication_seconds == 0.0
        assert all(v > 0 for v in est.compute_seconds.values())

    def test_large_tensor_scales_well(self, model):
        """Amazon-scale work should reach near-linear strong scaling."""
        stats = get_dataset("amazon").stats()
        assert model.speedup(stats, 32, 8) > 5.0

    def test_small_tensor_scales_poorly(self, model):
        """Uber is collective-latency-bound: adding GPUs must not win big."""
        stats = get_dataset("uber").stats()
        assert model.speedup(stats, 32, 8) < 2.0

    def test_scaling_monotone_for_large(self, model):
        stats = get_dataset("nell1").stats()
        curve = model.scaling_curve(stats, 32, counts=(1, 2, 4, 8))
        totals = [curve[n].total for n in (1, 2, 4, 8)]
        assert totals == sorted(totals, reverse=True)

    def test_communication_grows_with_gpus(self, model):
        stats = get_dataset("delicious").stats()
        c2 = model.estimate(stats, 32, 2).communication_seconds
        c8 = model.estimate(stats, 32, 8).communication_seconds
        assert c8 > c2 > 0.0

    def test_speedup_bounded_by_gpu_count(self, model):
        stats = get_dataset("flickr").stats()
        for n in (2, 4, 8):
            assert model.speedup(stats, 32, n) <= n * 1.05

    def test_faster_interconnect_helps(self):
        stats = get_dataset("delicious").stats()
        slow = MultiGpuModel("a100", interconnect=Interconnect(bandwidth=10e9))
        fast = MultiGpuModel("a100", interconnect=Interconnect(bandwidth=600e9))
        assert fast.estimate(stats, 32, 8).total < slow.estimate(stats, 32, 8).total

    def test_works_with_other_updates(self):
        stats = TensorStats.from_dims((200_000, 100_000, 50_000), 10**7)
        for update in ("mu", "hals"):
            est = MultiGpuModel("h100", update=update).estimate(stats, 16, 4)
            assert est.total > 0


class TestMultiNodeModel:
    def test_single_node_equals_multigpu(self):
        from repro.machine.multigpu import MultiNodeModel

        stats = get_dataset("nell2").stats()
        node = MultiNodeModel("a100", gpus_per_node=4)
        flat = MultiGpuModel("a100")
        assert node.estimate(stats, 32, 1).total == pytest.approx(
            flat.estimate(stats, 32, 4).total
        )

    def test_compute_heavy_tensor_scales_across_nodes(self):
        from repro.machine.multigpu import MultiNodeModel

        stats = get_dataset("amazon").stats()
        model = MultiNodeModel("a100", gpus_per_node=4)
        assert model.speedup(stats, 32, 4) > 1.5

    def test_factor_heavy_tensor_is_fabric_bound(self):
        """Delicious's 20M-row factors make the inter-node all-gather the
        bottleneck — the medium-grained decomposition stops scaling, which
        is exactly why distributed CP implementations move to fine-grained
        partitioning (SPLATT-MPI)."""
        from repro.machine.multigpu import MultiNodeModel

        stats = get_dataset("delicious").stats()
        model = MultiNodeModel("a100", gpus_per_node=4)
        assert model.speedup(stats, 32, 4) < 1.5

    def test_faster_fabric_restores_scaling(self):
        from repro.machine.multigpu import Interconnect, MultiNodeModel

        stats = get_dataset("delicious").stats()
        slow = MultiNodeModel("a100", inter_node=Interconnect(bandwidth=25e9))
        fast = MultiNodeModel("a100", inter_node=Interconnect(bandwidth=400e9))
        assert fast.estimate(stats, 32, 4).total < slow.estimate(stats, 32, 4).total
