"""Device specs and the roofline cost model: unit + property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.costmodel import dram_traffic, kernel_seconds, miss_rate, utilization
from repro.machine.counters import WORD_BYTES, KernelRecord, Timeline
from repro.machine.spec import A100, H100, ICELAKE_XEON, DeviceSpec, get_device


class TestSpecs:
    def test_presets_resolve(self):
        assert get_device("a100") is A100
        assert get_device("H100") is H100
        assert get_device("cpu") is ICELAKE_XEON
        assert get_device(A100) is A100

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_device("tpu")

    def test_table1_bandwidths(self):
        # Both GPUs share the Table 1 HBM bandwidth.
        assert A100.mem_bandwidth == H100.mem_bandwidth == 2039e9

    def test_h100_larger_cache(self):
        # 28.5+50 MB vs 20.3+40 MB (Table 1).
        assert H100.cache_bytes > A100.cache_bytes

    def test_gpu_needs_more_parallelism_than_cpu(self):
        assert A100.saturation_work > 10 * ICELAKE_XEON.saturation_work

    def test_cpu_handles_triangular_solves_better(self):
        assert ICELAKE_XEON.trsm_efficiency > A100.trsm_efficiency

    def test_with_override(self):
        fast = A100.with_(mem_bandwidth=3e12)
        assert fast.mem_bandwidth == 3e12
        assert fast.name == A100.name
        assert A100.mem_bandwidth == 2039e9  # original untouched

    def test_validation_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            A100.with_(kind="fpga")

    def test_validation_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            A100.with_(gemm_efficiency=1.5)


def _rec(**kw):
    base = dict(
        name="k", phase="P", flops=0.0, bytes_read=0.0, bytes_written=0.0, parallel_work=1.0
    )
    base.update(kw)
    return KernelRecord(**base)


class TestUtilization:
    def test_half_at_saturation(self):
        assert utilization(A100, A100.saturation_work) == pytest.approx(0.5)

    def test_monotone(self):
        values = [utilization(A100, w) for w in (1e2, 1e4, 1e6, 1e8)]
        assert values == sorted(values)
        assert values[-1] > 0.99

    @given(st.floats(min_value=1, max_value=1e12), st.floats(min_value=1, max_value=1e12))
    @settings(max_examples=50, deadline=None)
    def test_monotone_property(self, a, b):
        lo, hi = sorted((a, b))
        assert utilization(H100, lo) <= utilization(H100, hi) + 1e-15


class TestDramTraffic:
    def test_no_reaccess_all_compulsory(self):
        rec = _rec(bytes_read=1000.0, bytes_written=200.0)
        assert dram_traffic(A100, rec) == 1200.0

    def test_cache_resident_reaccess_free(self):
        rec = _rec(
            bytes_read=1e9, bytes_written=0.0, unique_bytes=1e6, working_set=1e6
        )
        assert dram_traffic(A100, rec) == pytest.approx(1e6)

    def test_thrashing_reaccess_pays_full(self):
        rec = _rec(
            bytes_read=1e9, bytes_written=0.0, unique_bytes=1e6, working_set=1e12
        )
        assert dram_traffic(A100, rec) == pytest.approx(1e9, rel=0.01)

    def test_bigger_cache_never_more_traffic(self):
        rec = _rec(bytes_read=1e9, unique_bytes=1e7, working_set=100e6)
        assert dram_traffic(H100, rec) <= dram_traffic(A100, rec)

    def test_miss_rate_bounds(self):
        rec = _rec(bytes_read=1.0, working_set=1.0)
        assert 0.0 <= miss_rate(A100, rec) <= 1.0


class TestKernelSeconds:
    def test_launch_overhead_floor(self):
        rec = _rec(launches=1)
        assert kernel_seconds(A100, rec) >= A100.launch_overhead

    def test_serial_steps_charged(self):
        fast = kernel_seconds(A100, _rec(serial_steps=0))
        slow = kernel_seconds(A100, _rec(serial_steps=1000))
        assert slow - fast == pytest.approx(1000 * A100.sync_overhead)

    def test_memory_bound_kernel_scales_with_bytes(self):
        small = kernel_seconds(A100, _rec(bytes_read=1e6, parallel_work=1e9))
        large = kernel_seconds(A100, _rec(bytes_read=1e9, parallel_work=1e9))
        assert large > 100 * small

    def test_compute_bound_kernel_scales_with_flops(self):
        small = kernel_seconds(A100, _rec(flops=1e8, parallel_work=1e9))
        large = kernel_seconds(A100, _rec(flops=1e12, parallel_work=1e9))
        assert large > 100 * small

    def test_roofline_takes_max(self):
        mem = kernel_seconds(A100, _rec(bytes_read=1e9, parallel_work=1e9))
        both = kernel_seconds(A100, _rec(bytes_read=1e9, flops=1.0, parallel_work=1e9))
        assert both == pytest.approx(mem)

    def test_gather_slower_than_stream_when_thrashing(self):
        stream = _rec(bytes_read=1e9, parallel_work=1e9, traffic_kind="stream")
        gather = _rec(
            bytes_read=1e9,
            parallel_work=1e9,
            traffic_kind="gather",
            unique_bytes=1e9,
            working_set=100e9,
        )
        assert kernel_seconds(A100, gather) > kernel_seconds(A100, stream)

    def test_low_parallelism_penalized(self):
        narrow = kernel_seconds(A100, _rec(bytes_read=1e8, parallel_work=1e3))
        wide = kernel_seconds(A100, _rec(bytes_read=1e8, parallel_work=1e9))
        assert narrow > 10 * wide

    def test_utilization_exempt_ignores_parallelism_for_flops(self):
        narrow = kernel_seconds(
            A100, _rec(flops=1e10, parallel_work=1e2, utilization_exempt=True)
        )
        wide = kernel_seconds(
            A100, _rec(flops=1e10, parallel_work=1e9, utilization_exempt=True)
        )
        assert narrow == pytest.approx(wide)

    @given(st.floats(min_value=0, max_value=1e12), st.floats(min_value=0, max_value=1e12))
    @settings(max_examples=50, deadline=None)
    def test_time_positive_and_monotone_in_bytes(self, b1, b2):
        lo, hi = sorted((b1, b2))
        t_lo = kernel_seconds(H100, _rec(bytes_read=lo, parallel_work=1e6))
        t_hi = kernel_seconds(H100, _rec(bytes_read=hi, parallel_work=1e6))
        assert 0 < t_lo <= t_hi + 1e-15


class TestTimeline:
    def test_phase_aggregation(self):
        tl = Timeline()
        tl.add(_rec(name="a", phase="X"), 1.0)
        tl.add(_rec(name="b", phase="X"), 2.0)
        tl.add(_rec(name="a", phase="Y"), 3.0)
        assert tl.seconds("X") == 3.0
        assert tl.seconds("Y") == 3.0
        assert tl.total_seconds() == 6.0
        assert tl.kernel_seconds["a"] == 4.0

    def test_breakdown_sums_to_one(self):
        tl = Timeline()
        tl.add(_rec(phase="X"), 1.0)
        tl.add(_rec(phase="Y"), 3.0)
        assert sum(tl.breakdown().values()) == pytest.approx(1.0)

    def test_launch_count(self):
        tl = Timeline()
        tl.add(_rec(launches=3), 0.1)
        tl.add(_rec(launches=2), 0.1)
        assert tl.launch_count == 5

    def test_merged(self):
        a, b = Timeline(), Timeline()
        a.add(_rec(phase="X"), 1.0)
        b.add(_rec(phase="X"), 2.0)
        assert a.merged_with(b).seconds("X") == 3.0

    def test_records_kept_on_request(self):
        tl = Timeline(keep_records=True)
        tl.add(_rec(), 0.1)
        assert len(tl.records) == 1

    def test_word_size_is_fp64(self):
        assert WORD_BYTES == 8
