"""Failure-injection and degenerate-input robustness of the full stack."""

import numpy as np
import pytest

from repro.core import cstf
from repro.core.config import CstfConfig
from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import random_sparse


class TestDegenerateTensors:
    def test_single_nonzero(self):
        t = SparseTensor(np.array([[2, 3, 1]]), np.array([5.0]), (4, 5, 3))
        res = cstf(t, rank=1, update="cuadmm", max_iters=10, seed=0)
        # A single nonzero is exactly rank 1: fit should be near-perfect.
        assert res.fits[-1] > 0.99

    def test_rank_exceeds_smallest_dim(self):
        t = random_sparse((20, 15, 2), nnz=50, seed=0)
        res = cstf(t, rank=6, update="cuadmm", max_iters=5, seed=0)
        assert np.isfinite(res.fits).all()

    def test_mode_of_length_one(self):
        t = random_sparse((12, 1, 9), nnz=30, seed=1)
        res = cstf(t, rank=2, update="cuadmm", max_iters=5, seed=0)
        assert res.kruskal.factors[1].shape == (1, 2)
        assert np.isfinite(res.fits[-1])

    def test_constant_tensor(self):
        dense = np.full((6, 5, 4), 2.5)
        t = SparseTensor.from_dense(dense)
        res = cstf(t, rank=1, update="cuadmm", max_iters=20, seed=0)
        assert res.fits[-1] > 0.999  # constant tensor is exactly rank 1

    def test_tiny_values_no_nan(self):
        t = random_sparse((10, 9, 8), nnz=40, seed=2)
        scaled = t.scale_values(1e-150)
        res = cstf(scaled, rank=2, update="cuadmm", max_iters=5, seed=0)
        for f in res.kruskal.factors:
            assert np.isfinite(f).all()

    def test_huge_values_no_overflow(self):
        t = random_sparse((10, 9, 8), nnz=40, seed=3)
        scaled = t.scale_values(1e120)
        res = cstf(scaled, rank=2, update="cuadmm", max_iters=5, seed=0)
        for f in res.kruskal.factors:
            assert np.isfinite(f).all()

    def test_two_mode_tensor_is_nmf(self):
        """N=2 degenerates to nonnegative matrix factorization and must
        still work through the whole tensor machinery."""
        rng = np.random.default_rng(4)
        w, h = rng.random((15, 3)), rng.random((12, 3))
        t = SparseTensor.from_dense(w @ h.T)
        res = cstf(t, rank=3, update="cuadmm", max_iters=60, seed=1)
        assert res.fits[-1] > 0.99


class TestBadInputs:
    def test_nan_values_rejected_at_boundary(self):
        with pytest.raises(ValueError, match="finite"):
            SparseTensor(np.array([[0, 0]]), np.array([np.nan]), (2, 2))

    def test_inf_values_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            SparseTensor(np.array([[0, 0]]), np.array([np.inf]), (2, 2))

    def test_all_updates_reject_mismatched_m(self, small3):
        from repro.kernels.gram import gram_chain
        from repro.machine.executor import Executor
        from repro.updates.admm import AdmmUpdate

        rng = np.random.default_rng(0)
        factors = [rng.random((d, 3)) for d in small3.shape]
        s_mat = gram_chain(factors, skip=0)
        bad_m = rng.random((99, 3))  # wrong row count
        update = AdmmUpdate(inner_iters=2)
        state = update.init_state(small3.shape, 3)
        with pytest.raises(ValueError):
            update.update(Executor("a100"), 0, bad_m, s_mat, factors[0], state)

    def test_driver_rejects_rank_zero(self, small3):
        with pytest.raises(ValueError):
            cstf(small3, rank=0)

    def test_config_rejects_unknown_update_lazily(self, small3):
        with pytest.raises(KeyError, match="unknown update"):
            cstf(small3, CstfConfig(update="newton"))


class TestDeterminismUnderConcurrency:
    def test_same_config_same_result_many_runs(self):
        """Repeated runs are bit-identical (no hidden global RNG state)."""
        t = random_sparse((14, 11, 8), nnz=120, seed=7)
        results = [
            cstf(t, rank=3, update="cuadmm", max_iters=4, seed=42).fits for _ in range(3)
        ]
        assert results[0] == results[1] == results[2]
