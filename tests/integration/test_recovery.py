"""End-to-end integration: planted-factor recovery across the full stack.

Each test runs the whole pipeline — tensor generation, format construction,
AO driver, update method, machine accounting — and checks a *numerical*
outcome (fit, factor recovery), not just that nothing crashed.
"""

import numpy as np
import pytest

from repro.core import KruskalTensor, cstf, factor_match_score
from repro.core.config import CstfConfig
from repro.tensor.synthetic import planted_sparse_cp


@pytest.fixture(scope="module")
def planted_problem():
    tensor, factors = planted_sparse_cp((24, 20, 16), rank=3, factor_sparsity=0.55, seed=21)
    return tensor, KruskalTensor(factors)


class TestRecovery:
    @pytest.mark.parametrize("update", ["admm", "cuadmm", "hals"])
    def test_nonneg_updates_recover_planted_model(self, planted_problem, update):
        tensor, truth = planted_problem
        best_fms = 0.0
        for seed in (0, 1, 2):  # CP is non-convex; allow restarts
            res = cstf(tensor, rank=3, update=update, max_iters=80, tol=1e-7, seed=seed)
            if res.fits[-1] > 0.98:
                best_fms = max(best_fms, factor_match_score(res.kruskal, truth))
        assert best_fms > 0.95, update

    def test_mu_improves_fit_substantially(self, planted_problem):
        tensor, _ = planted_problem
        res = cstf(tensor, rank=3, update="mu", max_iters=150, seed=0)
        assert res.fits[-1] > 0.85

    def test_apg_improves_fit(self, planted_problem):
        tensor, _ = planted_problem
        res = cstf(tensor, rank=3, update="apg", max_iters=60, seed=0)
        assert res.fits[-1] > 0.85

    def test_unconstrained_als_fits_best_or_equal(self, planted_problem):
        tensor, _ = planted_problem
        als = cstf(tensor, rank=3, update="als", max_iters=40, seed=0)
        admm = cstf(tensor, rank=3, update="cuadmm", max_iters=40, seed=0)
        # On a nonneg ground truth both should do well; ALS cannot be
        # dramatically worse than the constrained method.
        assert als.fits[-1] > admm.fits[-1] - 0.05

    def test_overparameterized_rank_still_fits(self, planted_problem):
        tensor, _ = planted_problem
        res = cstf(tensor, rank=6, update="cuadmm", max_iters=60, seed=0)
        assert res.fits[-1] > 0.95

    def test_underparameterized_rank_caps_fit(self, planted_problem):
        tensor, _ = planted_problem
        res1 = cstf(tensor, rank=1, update="cuadmm", max_iters=60, seed=0)
        res3 = cstf(tensor, rank=3, update="cuadmm", max_iters=60, seed=0)
        assert res3.fits[-1] > res1.fits[-1]


class TestCrossConfiguration:
    def test_gpu_and_cpu_configs_same_numerics(self, planted_problem):
        """The device model changes simulated time only — never results."""
        tensor, _ = planted_problem
        gpu = cstf(
            tensor,
            CstfConfig(rank=3, max_iters=5, update="cuadmm", device="a100",
                       mttkrp_format="blco", seed=7),
        )
        cpu = cstf(
            tensor,
            CstfConfig(rank=3, max_iters=5, update="cuadmm", device="cpu",
                       mttkrp_format="blco", seed=7),
        )
        assert gpu.fits == pytest.approx(cpu.fits, rel=1e-12)
        assert gpu.per_iteration_seconds() != cpu.per_iteration_seconds()

    def test_constraint_actually_binds(self, planted_problem):
        """Factor a tensor with *negative* entries under nonnegativity: the
        model must stay feasible and the fit must be lower than ALS's."""
        tensor, _ = planted_problem
        shifted = tensor.scale_values(-1.0)
        res = cstf(shifted, rank=3, update="cuadmm", max_iters=20, seed=0)
        for f in res.kruskal.factors:
            assert (f >= 0).all()
        # A nonneg model cannot represent an all-negative tensor.
        assert res.fits[-1] <= 0.05

    def test_weights_times_factors_reconstruct(self, planted_problem):
        tensor, _ = planted_problem
        res = cstf(tensor, rank=3, update="cuadmm", max_iters=40, seed=1)
        model = res.kruskal
        # The reported fit must agree with a from-scratch evaluation.
        recomputed = 1.0 - np.sqrt(model.residual_norm_sq(tensor)) / tensor.norm()
        assert res.fits[-1] == pytest.approx(recomputed, abs=1e-9)
