"""Full configuration grid: every update × format × device combination runs
and produces sane numbers.

The paper's framework claim is *composability* — AUNTF accepts any update
scheme over any storage backend. This grid is the composability contract:
no combination may crash, produce non-finite factors, or (for the Frobenius
methods) differ numerically across storage formats.
"""

import numpy as np
import pytest

from repro.core import cstf
from repro.core.config import CstfConfig
from repro.tensor.synthetic import planted_sparse_cp

UPDATES = ["admm", "cuadmm", "admm_of", "admm_pi", "blocked_admm", "hals", "mu", "als", "apg", "mu_kl", "anls_bpp"]
FORMATS = ["coo", "csf", "alto", "blco"]
DEVICES = ["a100", "h100", "cpu"]


@pytest.fixture(scope="module")
def tensor():
    t, _ = planted_sparse_cp((14, 12, 10), rank=2, factor_sparsity=0.4, seed=31)
    return t


class TestUpdateFormatGrid:
    @pytest.mark.parametrize("update", UPDATES)
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_runs_and_finite(self, tensor, update, fmt):
        res = cstf(
            tensor,
            CstfConfig(rank=2, max_iters=3, update=update, mttkrp_format=fmt,
                       device="a100", seed=3),
        )
        assert len(res.fits) == 3
        assert np.isfinite(res.fits).all()
        for f in res.kruskal.factors:
            assert np.isfinite(f).all()

    @pytest.mark.parametrize("update", ["cuadmm", "hals", "mu"])
    def test_formats_agree_numerically(self, tensor, update):
        baseline = cstf(
            tensor, CstfConfig(rank=2, max_iters=3, update=update,
                               mttkrp_format="coo", seed=4)
        )
        for fmt in FORMATS[1:]:
            res = cstf(
                tensor, CstfConfig(rank=2, max_iters=3, update=update,
                                   mttkrp_format=fmt, seed=4)
            )
            assert res.fits == pytest.approx(baseline.fits, rel=1e-8), (update, fmt)


class TestDeviceGrid:
    @pytest.mark.parametrize("update", ["cuadmm", "hals", "mu", "apg"])
    @pytest.mark.parametrize("device", DEVICES)
    def test_device_changes_time_not_math(self, tensor, update, device):
        res = cstf(
            tensor,
            CstfConfig(rank=2, max_iters=2, update=update, device=device, seed=5),
        )
        ref = cstf(
            tensor,
            CstfConfig(rank=2, max_iters=2, update=update, device="a100", seed=5),
        )
        assert res.fits == pytest.approx(ref.fits, rel=1e-12)
        assert res.per_iteration_seconds() > 0
