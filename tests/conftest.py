"""Shared fixtures: small deterministic tensors and factor sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.coo import SparseTensor
from repro.tensor.synthetic import planted_sparse_cp, random_sparse


@pytest.fixture
def rng():
    return np.random.default_rng(20240812)  # the paper's publication date


@pytest.fixture
def small3(rng) -> SparseTensor:
    """A modest 3-mode random sparse tensor."""
    return random_sparse((17, 13, 9), nnz=180, seed=rng)


@pytest.fixture
def small4(rng) -> SparseTensor:
    """A 4-mode tensor with one very short mode (VAST-like shape stress)."""
    return random_sparse((23, 4, 15, 11), nnz=260, seed=rng)


@pytest.fixture
def factors3(small3, rng):
    return [rng.random((d, 5)) for d in small3.shape]


@pytest.fixture
def factors4(small4, rng):
    return [rng.random((d, 6)) for d in small4.shape]


@pytest.fixture
def planted():
    """A genuinely low-rank sparse tensor plus its planted factors."""
    return planted_sparse_cp((22, 18, 14), rank=3, factor_sparsity=0.5, seed=11)
