"""Experiment drivers: each figure's shape targets (DESIGN.md §4).

These are the reproduction's acceptance tests — they assert the qualitative
results the paper reports, evaluated through the analytic machine model at
the paper's own scales.
"""

import pytest

from repro.experiments.figures import (
    eq345_arithmetic_intensity,
    fig1_dense_vs_sparse_breakdown,
    fig3_cstf_breakdown,
    fig4_cuadmm_optimizations,
    fig5_6_end_to_end_speedup,
    fig7_8_kernel_speedups,
    fig9_10_mu_hals_speedup,
    table2_datasets,
    time_update_symbolic,
)
from repro.updates.admm import AdmmUpdate


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1_dense_vs_sparse_breakdown()

    def test_mttkrp_dominates_dense(self, result):
        dense = result[0]
        assert dense.label == "DenseTF"
        assert dense.dominant == "MTTKRP"
        assert dense.fractions["MTTKRP"] > 0.6

    def test_update_dominates_sparse(self, result):
        sparse = result[1]
        assert sparse.label == "SparseTF"
        assert sparse.dominant == "UPDATE"
        assert sparse.fractions["UPDATE"] > 0.5


class TestFig3:
    def test_update_dominates_all_three(self):
        for row in fig3_cstf_breakdown():
            assert row.dominant == "UPDATE", row.label
            assert row.fractions["UPDATE"] > 0.5, row.label


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig4_cuadmm_optimizations(inner_iters=1)

    def test_combined_never_slower_than_single(self, rows):
        for r in rows:
            assert r.speedup_both >= 0.95 * max(r.speedup_of, r.speedup_pi), r

    def test_small_group_modest(self, rows):
        """NIPS (small factor matrices) sees ≈1.0–1.3×."""
        for r in rows:
            if r.dataset == "nips":
                assert r.speedup_both < 1.5

    def test_large_modes_substantial(self, rows):
        """Long modes of the large group reach well beyond the small group."""
        large = [r.speedup_both for r in rows if r.rows > 1_000_000]
        small = [r.speedup_both for r in rows if r.rows < 20_000]
        assert min(large) > max(small)

    def test_pi_beats_of_on_large_modes(self, rows):
        """The paper: 'pre-inversion has a higher impact than operation
        fusion' — true for the modes where the solve matters (large)."""
        for r in rows:
            if r.rows > 1_000_000:
                assert r.speedup_pi > r.speedup_of, r

    def test_speedups_bounded(self, rows):
        """Paper reports up to ≈1.8×; the model must stay in that regime
        (no runaway optimization artifacts)."""
        assert max(r.speedup_both for r in rows) < 3.0


class TestFig56:
    @pytest.fixture(scope="class")
    def a100(self):
        return fig5_6_end_to_end_speedup(device="a100")

    @pytest.fixture(scope="class")
    def h100(self):
        return fig5_6_end_to_end_speedup(device="h100")

    def test_gpu_wins_overall(self, a100):
        assert a100.gmean > 3.0

    def test_gpu_wins_every_tensor(self, a100):
        assert a100.min_speedup > 1.0

    def test_h100_beats_a100(self, a100, h100):
        assert h100.gmean > a100.gmean

    def test_large_group_beats_small_group(self, a100):
        by_name = dict(zip(a100.labels, a100.speedups))
        small_max = max(by_name[k] for k in ("nips", "uber", "chicago"))
        for name in ("flickr", "delicious", "nell1", "amazon"):
            assert by_name[name] > small_max, name

    def test_gmean_same_order_as_paper(self, a100, h100):
        """Paper: 5.10× (A100) and 7.01× (H100); the model should land in
        the same decade, not at 100× or 1.1×."""
        assert 2.0 < a100.gmean < 20.0
        assert 2.0 < h100.gmean < 25.0


class TestFig78:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7_8_kernel_speedups(device="a100")

    def test_vast_is_the_outlier(self, rows):
        """The paper singles out VAST: its 2-long mode makes the GPU MTTKRP
        slower while its ADMM speedup stays high."""
        vast = next(r for r in rows if r.dataset == "vast")
        assert vast.mttkrp_speedup < 1.0
        assert vast.admm_speedup > 5.0

    def test_short_mode_tensors_favor_mttkrp(self, rows):
        """Short-mode tensors: bigger MTTKRP gain than ADMM gain."""
        for name in ("nips", "uber", "chicago"):
            r = next(x for x in rows if x.dataset == name)
            assert r.mttkrp_speedup > r.admm_speedup, name

    def test_long_mode_tensors_have_large_admm_gain(self, rows):
        for name in ("flickr", "delicious", "nell1", "amazon"):
            r = next(x for x in rows if x.dataset == name)
            assert r.admm_speedup > 10.0, name


class TestFig910:
    @pytest.fixture(scope="class")
    def a100(self):
        return fig9_10_mu_hals_speedup(device="a100")

    def test_both_methods_win_overall(self, a100):
        assert a100["mu"].gmean > 2.0
        assert a100["hals"].gmean > 2.0

    def test_h100_at_least_as_good(self, a100):
        h100 = fig9_10_mu_hals_speedup(device="h100")
        assert h100["mu"].gmean > a100["mu"].gmean
        assert h100["hals"].gmean > a100["hals"].gmean

    def test_most_tensors_win(self, a100):
        for method in ("mu", "hals"):
            wins = sum(1 for s in a100[method].speedups if s > 1.0)
            assert wins >= 8, method  # vast's short mode may lose


class TestTablesAndEquations:
    def test_table2_rows(self):
        rows = table2_datasets()
        assert len(rows) == 10
        assert rows[0]["name"] == "nips"
        assert rows[-1]["nnz"] > 1e9

    def test_eq345_paper_values(self):
        ai = eq345_arithmetic_intensity()
        assert ai[16] == pytest.approx(0.29, abs=0.01)
        assert ai[32] == pytest.approx(0.47, abs=0.01)
        assert ai[64] == pytest.approx(0.83, abs=0.01)


class TestTimeUpdateHelper:
    def test_monotone_in_rows(self):
        upd = AdmmUpdate(inner_iters=5)
        t_small = time_update_symbolic(upd, 1_000, 32, "h100")
        t_large = time_update_symbolic(upd, 10_000_000, 32, "h100")
        assert t_large > 10 * t_small
