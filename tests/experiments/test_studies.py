"""Unit tests for the rank-grid and convergence study drivers."""

import pytest

from repro.experiments.convergence import ConvergenceCurve, convergence_study
from repro.experiments.rank_study import rank_study


class TestRankStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        # Restrict to three datasets to keep the unit test fast.
        return rank_study(device="a100", ranks=(16, 32), datasets=["uber", "enron", "delicious"])

    def test_shape(self, rows):
        assert [r.rank for r in rows] == [16, 32]
        assert rows[0].series.labels == ("uber", "enron", "delicious")

    def test_arithmetic_intensity_from_eq5(self, rows):
        assert rows[0].arithmetic_intensity == pytest.approx(0.29, abs=0.01)
        assert rows[1].arithmetic_intensity == pytest.approx(0.47, abs=0.01)

    def test_speedups_positive(self, rows):
        for r in rows:
            assert r.series.min_speedup > 0


class TestConvergenceStudy:
    @pytest.fixture(scope="class")
    def curves(self):
        return convergence_study(
            shape=(24, 20, 16), rank=3, max_iters=12, updates=("cuadmm", "mu")
        )

    def test_curve_structure(self, curves):
        assert set(curves) == {"cuadmm", "mu"}
        for c in curves.values():
            assert isinstance(c, ConvergenceCurve)
            assert len(c.fits) == 12
            assert c.seconds_per_iteration > 0

    def test_time_to_fit(self, curves):
        c = curves["cuadmm"]
        target = c.fits[3]
        ttf = c.time_to_fit(target)
        assert ttf is not None
        assert ttf <= 4 * c.seconds_per_iteration + 1e-12

    def test_time_to_unreachable_fit_is_none(self, curves):
        assert curves["cuadmm"].time_to_fit(2.0) is None

    def test_final_fit(self, curves):
        for c in curves.values():
            assert c.final_fit == c.fits[-1]
