"""The command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.data.tns import write_tns
from repro.tensor.synthetic import planted_sparse_cp


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["meditate"])


class TestDatasets:
    def test_lists_all_ten(self):
        code, text = _run(["datasets"])
        assert code == 0
        for name in ("nips", "uber", "amazon", "delicious"):
            assert name in text

    def test_devices(self):
        code, text = _run(["devices"])
        assert code == 0
        assert "A100" in text and "H100" in text
        assert "2039" in text


class TestFactorize:
    def test_tns_file(self, tmp_path):
        tensor, _ = planted_sparse_cp((12, 10, 8), rank=2, seed=0)
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        code, text = _run(
            ["factorize", str(path), "--rank", "2", "--iters", "15", "--update", "cuadmm"]
        )
        assert code == 0
        assert "fit:" in text
        assert "UPDATE" in text

    def test_dataset_analogue(self):
        code, text = _run(
            ["factorize", "uber", "--rank", "4", "--iters", "2", "--nnz", "2000"]
        )
        assert code == 0
        assert "scaled analogue" in text

    def test_other_update_and_device(self, tmp_path):
        tensor, _ = planted_sparse_cp((10, 9, 8), rank=2, seed=1)
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        code, text = _run(
            ["factorize", str(path), "--rank", "2", "--iters", "3",
             "--update", "mu", "--device", "cpu", "--format", "alto"]
        )
        assert code == 0
        assert "IceLake" in text

    def test_unknown_dataset_errors(self):
        with pytest.raises(KeyError):
            _run(["factorize", "netflix"])


class TestPlanAndReport:
    def test_plan_vast_is_heterogeneous(self):
        code, text = _run(["plan", "vast"])
        assert code == 0
        assert "het:mttkrp=cpu" in text
        assert "chosen:" in text

    def test_plan_large_is_gpu(self):
        code, text = _run(["plan", "amazon"])
        assert code == 0
        assert "chosen: gpu" in text

    def test_report(self):
        code, text = _run(["report", "--device", "a100"])
        assert code == 0
        assert "GMean" in text
        assert "delicious" in text


class TestAnalyze:
    def test_analyze_vast(self):
        code, text = _run(["analyze", "vast"])
        assert code == 0
        assert "contention risk" in text
        assert "MTTKRP" in text

    def test_analyze_delicious_update_bound(self):
        code, text = _run(["analyze", "delicious"])
        assert code == 0
        assert "UPDATE" in text
        assert "large" in text


class TestTrace:
    def test_factorize_with_trace(self, tmp_path):
        import json

        tensor, _ = planted_sparse_cp((10, 9, 8), rank=2, seed=2)
        tns_path = tmp_path / "t.tns"
        write_tns(tensor, tns_path)
        trace_path = tmp_path / "trace.json"
        code, text = _run(
            ["factorize", str(tns_path), "--rank", "2", "--iters", "2",
             "--trace", str(trace_path)]
        )
        assert code == 0
        assert "chrome trace written" in text
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "mttkrp_blco" in names
        assert "fused_auxiliary" in names
