"""The command-line interface."""

import io

import pytest

from repro.cli import build_parser, main
from repro.data.tns import write_tns
from repro.tensor.synthetic import planted_sparse_cp


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["meditate"])


class TestDatasets:
    def test_lists_all_ten(self):
        code, text = _run(["datasets"])
        assert code == 0
        for name in ("nips", "uber", "amazon", "delicious"):
            assert name in text

    def test_devices(self):
        code, text = _run(["devices"])
        assert code == 0
        assert "A100" in text and "H100" in text
        assert "2039" in text


class TestFactorize:
    def test_tns_file(self, tmp_path):
        tensor, _ = planted_sparse_cp((12, 10, 8), rank=2, seed=0)
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        code, text = _run(
            ["factorize", str(path), "--rank", "2", "--iters", "15", "--update", "cuadmm"]
        )
        assert code == 0
        assert "fit:" in text
        assert "UPDATE" in text

    def test_dataset_analogue(self):
        code, text = _run(
            ["factorize", "uber", "--rank", "4", "--iters", "2", "--nnz", "2000"]
        )
        assert code == 0
        assert "scaled analogue" in text

    def test_other_update_and_device(self, tmp_path):
        tensor, _ = planted_sparse_cp((10, 9, 8), rank=2, seed=1)
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        code, text = _run(
            ["factorize", str(path), "--rank", "2", "--iters", "3",
             "--update", "mu", "--device", "cpu", "--format", "alto"]
        )
        assert code == 0
        assert "IceLake" in text

    def test_unknown_dataset_errors(self):
        with pytest.raises(KeyError):
            _run(["factorize", "netflix"])

    def test_engine_flag_matches_seed_run(self, tmp_path):
        tensor, _ = planted_sparse_cp((14, 11, 9), rank=2, seed=4)
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        base = ["factorize", str(path), "--rank", "2", "--iters", "4",
                "--format", "coo"]
        code_seed, text_seed = _run(base)
        code_eng, text_eng = _run(base + ["--engine", "on"])
        code_sh, text_sh = _run(base + ["--shards", "2"])
        assert code_seed == code_eng == code_sh == 0
        # Same fit line and same simulated breakdown: the engine changes
        # host execution only.
        fit = next(l for l in text_seed.splitlines() if l.startswith("fit:"))
        assert fit in text_eng and fit in text_sh


class TestPlanAndReport:
    def test_plan_vast_is_heterogeneous(self):
        code, text = _run(["plan", "vast"])
        assert code == 0
        assert "het:mttkrp=cpu" in text
        assert "chosen:" in text

    def test_plan_large_is_gpu(self):
        code, text = _run(["plan", "amazon"])
        assert code == 0
        assert "chosen: gpu" in text

    def test_report(self):
        code, text = _run(["report", "--device", "a100"])
        assert code == 0
        assert "GMean" in text
        assert "delicious" in text


class TestAnalyze:
    def test_analyze_vast(self):
        code, text = _run(["analyze", "vast"])
        assert code == 0
        assert "contention risk" in text
        assert "MTTKRP" in text

    def test_analyze_delicious_update_bound(self):
        code, text = _run(["analyze", "delicious"])
        assert code == 0
        assert "UPDATE" in text
        assert "large" in text


class TestTraceErrors:
    """`repro trace` error paths: exit codes and stderr messages."""

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code, text = _run(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert text == ""
        err = capsys.readouterr().err
        assert "repro trace: file not found:" in err and "nope.jsonl" in err

    def test_schema_invalid_line_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "id": "not-an-int"}\n', encoding="utf-8")
        code, _ = _run(["trace", str(bad), "--out", str(tmp_path / "t.json")])
        assert code == 1
        err = capsys.readouterr().err
        assert "invalid telemetry:" in err and "line 1" in err
        assert not (tmp_path / "t.json").exists()  # nothing written on failure

    def test_empty_stream_exits_1(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        code, _ = _run(["trace", str(empty)])
        assert code == 1
        assert "no telemetry records" in capsys.readouterr().err

    def test_valid_stream_still_converts(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        code, _ = _run(["factorize", "uber", "--rank", "2", "--iters", "2",
                        "--nnz", "1000", "--trace-out", str(jsonl)])
        assert code == 0
        code, text = _run(["trace", str(jsonl), "--out", str(tmp_path / "t.json")])
        assert code == 0
        assert "chrome trace written" in text


class TestPerfVerb:
    def test_perf_on_dataset_analogue(self):
        code, text = _run(["perf", "uber", "--rank", "2", "--iters", "2",
                           "--nnz", "1000"])
        assert code == 0
        assert "phase attribution" in text
        assert "kernel hotspots" in text
        assert "critical path" in text
        assert "paper claim ~2/3" in text
        assert "pre-inversion on" in text

    def test_perf_missing_jsonl_exits_2(self, tmp_path, capsys):
        code, _ = _run(["perf", str(tmp_path / "gone.jsonl")])
        assert code == 2
        assert "trace file not found" in capsys.readouterr().err

    def test_perf_invalid_jsonl_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "id": "x"}\n', encoding="utf-8")
        code, _ = _run(["perf", str(bad)])
        assert code == 2
        assert "invalid telemetry stream" in capsys.readouterr().err

    def test_perf_from_jsonl_file(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        _run(["factorize", "uber", "--rank", "2", "--iters", "2",
              "--nnz", "1000", "--trace-out", str(jsonl)])
        code, text = _run(["perf", str(jsonl)])
        assert code == 0
        assert "phase attribution" in text

    def test_perf_reports_engine_counters(self):
        code, text = _run(["perf", "uber", "--rank", "2", "--iters", "3",
                           "--nnz", "1000", "--format", "coo",
                           "--engine", "sharded"])
        assert code == 0
        assert "engine plan cache:" in text
        assert "hit rate" in text
        assert "engine sharding:" in text

    def test_perf_without_engine_has_no_engine_section(self):
        code, text = _run(["perf", "uber", "--rank", "2", "--iters", "2",
                           "--nnz", "1000"])
        assert code == 0
        assert "engine plan cache" not in text


class TestDoctorVerb:
    def test_healthy_run_no_findings(self):
        code, text = _run(["doctor", "uber", "--rank", "2", "--iters", "2",
                           "--nnz", "1000"])
        assert code == 0
        assert "no findings: run looks healthy" in text

    def test_unknown_dataset_exits_2(self, capsys):
        code, _ = _run(["doctor", "netflix"])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestDiffVerb:
    def test_missing_bench_file_exits_2(self, tmp_path, capsys):
        code, _ = _run(["diff", str(tmp_path / "BENCH_none.json")])
        assert code == 2
        assert "bench file not found" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json", encoding="utf-8")
        code, _ = _run(["diff", str(path)])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_schema_invalid_doc_exits_2(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_wrong.json"
        path.write_text(json.dumps({"type": "bench"}), encoding="utf-8")
        code, _ = _run(["diff", str(path)])
        assert code == 2
        assert "invalid bench document" in capsys.readouterr().err


class TestWatchVerb:
    def _write_stream(self, path):
        import json

        lines = [
            {"type": "meta", "version": 2, "run": {}},
            {"type": "span", "id": 0, "parent": None, "name": "shard",
             "ts": 0.0, "dur": 0.01, "attrs": {"shard": 0, "nnz": 9},
             "sim": None},
            {"type": "span", "id": 1, "parent": 0, "name": "shard_kernel",
             "ts": 0.0, "dur": 0.008, "attrs": {"shard": 0}, "sim": None,
             "worker": {"pid": 404, "id": 0}},
            {"type": "summary", "metrics": {}},
        ]
        path.write_text(
            "\n".join(json.dumps(x) for x in lines) + "\n", encoding="utf-8"
        )

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code, _ = _run(["watch", str(tmp_path / "gone.jsonl")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_once_renders_panel(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        self._write_stream(jsonl)
        code, text = _run(["watch", str(jsonl), "--once"])
        assert code == 0
        assert "schema v2" in text
        assert "shard 0" in text
        assert "pids=[404]" in text

    def test_watch_does_not_modify_stream(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        self._write_stream(jsonl)
        before = jsonl.read_bytes()
        code, _ = _run(["watch", str(jsonl), "--once"])
        assert code == 0
        assert jsonl.read_bytes() == before

    def test_live_mode_exits_on_summary(self, tmp_path):
        jsonl = tmp_path / "run.jsonl"
        self._write_stream(jsonl)
        code, text = _run(["watch", str(jsonl), "--interval", "0.01",
                           "--no-clear"])
        assert code == 0
        assert "finished" in text

    def test_plan_store_bytes_flag(self, tmp_path):
        from repro.cli import _engine_setting

        args = build_parser().parse_args(
            ["factorize", "x.tns", "--rank", "2",
             "--plan-store", str(tmp_path / "plans"),
             "--plan-store-bytes", "4096"]
        )
        setting = _engine_setting(args)
        assert setting["plan_store"] == str(tmp_path / "plans")
        assert setting["plan_store_bytes"] == 4096


class TestTrace:
    def test_factorize_with_trace(self, tmp_path):
        import json

        tensor, _ = planted_sparse_cp((10, 9, 8), rank=2, seed=2)
        tns_path = tmp_path / "t.tns"
        write_tns(tensor, tns_path)
        trace_path = tmp_path / "trace.json"
        code, text = _run(
            ["factorize", str(tns_path), "--rank", "2", "--iters", "2",
             "--trace", str(trace_path)]
        )
        assert code == 0
        assert "chrome trace written" in text
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "mttkrp_blco" in names
        assert "fused_auxiliary" in names
