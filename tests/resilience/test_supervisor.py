"""The run supervisor: retries, the degradation ladder, deadlines, format
fallback, and checkpoint auto-resume — with injectable clocks so nothing
here actually sleeps.

Acceptance (robustness issue): each degradation rung fires exactly once
per trigger, supervised chaos runs produce factors bit-identical to
fault-free runs, and a no-fault supervised run adds zero retries, zero
degradations, and zero events.
"""

import sys

import numpy as np
import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.engine.config import EngineConfig
from repro.engine.driver import PlanBuildError
from repro.obs import telemetry_session
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    ResilienceError,
    RunSupervisor,
    SupervisorConfig,
    supervised_cstf,
)
from repro.resilience.supervisor import _ladder
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((16, 12, 10), nnz=420, seed=7)


def _base(**overrides):
    kw = dict(rank=3, max_iters=3, mttkrp_format="coo", seed=2)
    kw.update(overrides)
    return CstfConfig(**kw)


class _Flaky:
    """Stand-in for cstf that fails a scripted number of times."""

    def __init__(self, failures, exc=RuntimeError("boom")):
        self.failures = failures
        self.exc = exc
        self.calls = 0
        self.configs = []

    def __call__(self, tensor, config=None, **kw):
        self.calls += 1
        self.configs.append(config)
        if self.calls <= self.failures:
            raise self.exc
        return cstf(tensor, config, **kw)


@pytest.fixture
def patch_cstf(monkeypatch):
    def apply(flaky):
        monkeypatch.setattr(
            sys.modules["repro.core.cstf"], "cstf", flaky
        )
        return flaky
    return apply


class TestNoFaultOverhead:
    def test_bit_identical_with_zero_events(self, tensor):
        plain = cstf(tensor, _base())
        sup = RunSupervisor(_base())
        supervised = sup.run(tensor)
        for a, b in zip(plain.kruskal.factors, supervised.kruskal.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(plain.kruskal.weights, supervised.kruskal.weights)
        assert sup.retries == 0
        assert sup.degradations == 0
        assert len(sup.events) == 0

    def test_helper_matches_plain_cstf(self, tensor):
        plain = cstf(tensor, _base())
        supervised = supervised_cstf(tensor, _base())
        for a, b in zip(plain.kruskal.factors, supervised.kruskal.factors):
            assert np.array_equal(a, b)


class TestRetries:
    def test_transient_failure_retried(self, tensor, patch_cstf):
        flaky = patch_cstf(_Flaky(failures=2))
        sup = RunSupervisor(_base(), SupervisorConfig(max_retries=3),
                            sleep=lambda s: None)
        result = sup.run(tensor)
        assert flaky.calls == 3
        assert sup.retries == 2
        assert sup.degradations == 0
        assert [e.kind for e in result.events[:2]] == ["run_retry", "run_retry"]
        assert result.kruskal is not None

    def test_retry_counter_in_telemetry(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=1))
        with telemetry_session() as tel:
            supervised_cstf(
                tensor, _base(),
                supervisor={"max_retries": 2, "backoff_base": 0.0},
                sleep=lambda s: None,
            )
        assert tel.metrics.summary()["counters"]["resilience.retries"] == 1

    def test_exhausted_retries_raise_with_history(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=99))
        sup = RunSupervisor(
            _base(), SupervisorConfig(max_retries=1, degrade=False),
            sleep=lambda s: None,
        )
        with pytest.raises(ResilienceError, match="bottom tier"):
            sup.run(tensor)
        assert sup.retries == 1

    def test_backoff_is_seeded_and_deterministic(self, tensor, patch_cstf):
        def delays_for(seed):
            patch_cstf(_Flaky(failures=3))
            delays = []
            sup = RunSupervisor(
                _base(),
                SupervisorConfig(max_retries=3, seed=seed,
                                 backoff_base=0.1, backoff_max=10.0),
                sleep=delays.append,
            )
            sup.run(tensor)
            return delays

        a, b = delays_for(5), delays_for(5)
        assert a == b
        assert len(a) == 3
        # Exponential growth under full jitter bounds: base*2^k .. 1.5x that.
        for k, d in enumerate(a):
            assert 0.1 * 2**k <= d <= 1.5 * 0.1 * 2**k
        assert delays_for(6) != a


class TestDegradationLadder:
    def test_ladder_shape_from_sharded(self):
        rungs = _ladder(EngineConfig(shards=4, chunk=512))
        assert [name for name, _ in rungs] == [
            "sharded engine", "chunked engine", "serial engine", "seed kernels",
        ]
        assert rungs[1][1].shards == 1 and rungs[1][1].chunk == 512
        assert rungs[2][1].chunk == 0
        assert rungs[3][1] is None

    def test_ladder_shape_from_seed(self):
        assert _ladder(None) == [("seed kernels", None)]

    def test_each_rung_fires_exactly_once_per_trigger(self, tensor, patch_cstf):
        """With max_retries=0 every failure is one trigger, and each must
        produce exactly one execution_degraded event stepping one rung."""
        flaky = patch_cstf(_Flaky(failures=3))
        sup = RunSupervisor(
            _base(engine={"shards": 4}),
            SupervisorConfig(max_retries=0, backoff_base=0.0),
            sleep=lambda s: None,
        )
        result = sup.run(tensor)
        degraded = [e for e in result.events if e.kind == "execution_degraded"]
        assert len(degraded) == 3
        assert [(e.data["from_tier"], e.data["to_tier"]) for e in degraded] == [
            ("sharded engine", "chunked engine"),
            ("chunked engine", "serial engine"),
            ("serial engine", "seed kernels"),
        ]
        # The run that succeeded used the seed kernels (engine disabled).
        assert flaky.configs[-1].engine is None
        assert sup.degradations == 3

    def test_degraded_result_bit_identical(self, tensor, patch_cstf):
        plain = cstf(tensor, _base())
        patch_cstf(_Flaky(failures=1))
        sup = RunSupervisor(
            _base(engine={"shards": 4}),
            SupervisorConfig(max_retries=0),
            sleep=lambda s: None,
        )
        result = sup.run(tensor)
        assert sup.degradations == 1
        for a, b in zip(plain.kruskal.factors, result.kruskal.factors):
            assert np.array_equal(a, b)

    def test_degradations_counted_in_telemetry(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=1))
        with telemetry_session() as tel:
            supervised_cstf(
                tensor, _base(engine="on"),
                supervisor={"max_retries": 0}, sleep=lambda s: None,
            )
        assert tel.metrics.summary()["counters"]["resilience.degradations"] == 1

    def test_degrade_disabled_raises_instead(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=99))
        sup = RunSupervisor(
            _base(engine={"shards": 4}),
            SupervisorConfig(max_retries=0, degrade=False),
            sleep=lambda s: None,
        )
        with pytest.raises(ResilienceError):
            sup.run(tensor)
        assert sup.degradations == 0


class _OomAbove(_Flaky):
    """Stand-in for cstf that OOMs whenever the engine runs too many shards."""

    def __init__(self, max_shards):
        super().__init__(failures=0)
        self.max_shards = max_shards

    def __call__(self, tensor, config=None, **kw):
        self.calls += 1
        self.configs.append(config)
        engine = config.engine
        if engine is not None and getattr(engine, "shards", 1) > self.max_shards:
            raise MemoryError("worker pool exceeded the memory budget")
        return cstf(tensor, config, **kw)


class TestPressureRungs:
    def test_memory_error_halves_shards_before_descending(
        self, tensor, patch_cstf
    ):
        flaky = patch_cstf(_OomAbove(max_shards=2))
        sup = RunSupervisor(
            _base(engine={"shards": 8}),
            SupervisorConfig(max_retries=0, backoff_base=0.0),
            sleep=lambda s: None,
        )
        result = sup.run(tensor)
        # 8 OOMs -> 4 OOMs -> 2 fits: the ladder narrowed, it never
        # abandoned the sharded tier.
        assert [c.engine.shards for c in flaky.configs] == [8, 4, 2]
        degraded = [e for e in result.events if e.kind == "execution_degraded"]
        assert [e.data["to_tier"] for e in degraded] == [
            "sharded engine @ 4 shards", "sharded engine @ 4 shards @ 2 shards",
        ]
        assert all("memory pressure" in e.detail for e in degraded)
        assert sup.degradations == 2

    def test_pressure_rung_result_bit_identical(self, tensor, patch_cstf):
        plain = cstf(tensor, _base())
        patch_cstf(_OomAbove(max_shards=4))
        result = RunSupervisor(
            _base(engine={"shards": 8}),
            SupervisorConfig(max_retries=0, backoff_base=0.0),
            sleep=lambda s: None,
        ).run(tensor)
        for a, b in zip(plain.kruskal.factors, result.kruskal.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(plain.kruskal.weights, result.kruskal.weights)

    def test_two_shards_descend_normally(self, tensor, patch_cstf):
        # At <= 2 shards there is nothing left to halve: a MemoryError
        # takes the normal rung down.
        patch_cstf(_OomAbove(max_shards=1))
        sup = RunSupervisor(
            _base(engine={"shards": 2}),
            SupervisorConfig(max_retries=0, backoff_base=0.0),
            sleep=lambda s: None,
        )
        result = sup.run(tensor)
        degraded = [e for e in result.events if e.kind == "execution_degraded"]
        assert [e.data["to_tier"] for e in degraded] == ["chunked engine"]
        assert not any("@" in e.data["to_tier"] for e in degraded)

    def test_non_memory_errors_never_insert_pressure_rungs(
        self, tensor, patch_cstf
    ):
        patch_cstf(_Flaky(failures=1))
        sup = RunSupervisor(
            _base(engine={"shards": 8}),
            SupervisorConfig(max_retries=0, backoff_base=0.0),
            sleep=lambda s: None,
        )
        result = sup.run(tensor)
        degraded = [e for e in result.events if e.kind == "execution_degraded"]
        assert [e.data["to_tier"] for e in degraded] == ["chunked engine"]


class TestBackoffDeadlineAware:
    def test_backoff_caps_at_remaining_budget(self, tensor):
        t = {"now": 0.0}
        sup = RunSupervisor(
            _base(),
            SupervisorConfig(deadline=10.0, backoff_base=100.0,
                             backoff_max=100.0, jitter=0.0),
            clock=lambda: t["now"], sleep=lambda s: None,
        )
        start = 0.0
        t["now"] = 4.0
        assert sup._backoff(0, start=start) == pytest.approx(6.0)
        t["now"] = 11.0  # past the deadline: never negative
        assert sup._backoff(0, start=start) == 0.0

    def test_backoff_uncapped_without_start_or_deadline(self, tensor):
        sup = RunSupervisor(
            _base(),
            SupervisorConfig(deadline=10.0, backoff_base=100.0,
                             backoff_max=100.0, jitter=0.0),
            clock=lambda: 1e9, sleep=lambda s: None,
        )
        assert sup._backoff(0) == pytest.approx(100.0)
        no_deadline = RunSupervisor(
            _base(),
            SupervisorConfig(backoff_base=100.0, backoff_max=100.0, jitter=0.0),
            clock=lambda: 1e9, sleep=lambda s: None,
        )
        assert no_deadline._backoff(0, start=0.0) == pytest.approx(100.0)

    def test_retry_event_records_the_capped_delay(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=1))
        t = {"now": 0.0}

        def clock():
            t["now"] += 1.0
            return t["now"]

        delays = []
        sup = RunSupervisor(
            _base(),
            SupervisorConfig(max_retries=3, deadline=10.0,
                             backoff_base=100.0, backoff_max=100.0),
            clock=clock, sleep=delays.append,
        )
        result = sup.run(tensor)
        retries = [e for e in result.events if e.kind == "run_retry"]
        assert len(retries) == 1 and len(delays) == 1
        # The audit trail shows what the supervisor actually slept, not
        # the uncapped draw.
        assert retries[0].data["delay"] == delays[0] <= 10.0


class TestFormatFallback:
    def test_plan_build_failure_falls_back_to_coo(self, tensor, patch_cstf):
        class _BadPlan(_Flaky):
            def __call__(self, t, config=None, **kw):
                self.calls += 1
                self.configs.append(config)
                if config.mttkrp_format != "coo":
                    raise PlanBuildError("alto conversion failed")
                return cstf(t, config, **kw)

        flaky = patch_cstf(_BadPlan(failures=0))
        sup = RunSupervisor(
            _base(mttkrp_format="alto", engine="on"),
            SupervisorConfig(max_retries=0), sleep=lambda s: None,
        )
        result = sup.run(tensor)
        fallbacks = [e for e in result.events if e.kind == "format_fallback"]
        assert len(fallbacks) == 1
        assert fallbacks[0].data["from_format"] == "alto"
        assert flaky.configs[-1].mttkrp_format == "coo"
        assert sup.degradations == 1
        assert sup.retries == 0  # a fallback does not consume a retry

    def test_plan_build_failure_on_coo_is_terminal(self, tensor, patch_cstf):
        def always_bad(t, config=None, **kw):
            raise PlanBuildError("broken")
        patch_cstf(always_bad)
        sup = RunSupervisor(_base(), SupervisorConfig(), sleep=lambda s: None)
        with pytest.raises(ResilienceError, match="no format fallback"):
            sup.run(tensor)


class TestDeadline:
    def test_deadline_exceeded_raises_with_event(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=99))
        t = {"now": 0.0}

        def clock():
            t["now"] += 40.0
            return t["now"]

        sup = RunSupervisor(
            _base(), SupervisorConfig(max_retries=10, deadline=100.0),
            clock=clock, sleep=lambda s: None,
        )
        with pytest.raises(ResilienceError, match="deadline") as exc_info:
            sup.run(tensor)
        kinds = [e.kind for e in exc_info.value.events]
        assert kinds[-1] == "deadline_exceeded"
        assert "run_retry" in kinds

    def test_sleep_capped_to_remaining_budget(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=1))
        t = {"now": 0.0}

        def clock():
            t["now"] += 1.0
            return t["now"]

        delays = []
        sup = RunSupervisor(
            _base(),
            SupervisorConfig(max_retries=3, deadline=10.0,
                             backoff_base=100.0, backoff_max=100.0),
            clock=clock, sleep=delays.append,
        )
        sup.run(tensor)
        assert len(delays) == 1
        assert delays[0] <= 10.0

    def test_zero_deadline_never_trips(self, tensor, patch_cstf):
        patch_cstf(_Flaky(failures=2))
        result = supervised_cstf(
            tensor, _base(), supervisor={"max_retries": 3, "backoff_base": 0.0},
            sleep=lambda s: None,
        )
        assert result.kruskal is not None


class TestCheckpointAutoResume:
    def test_crash_resumes_from_checkpoint(self, tensor, tmp_path, patch_cstf):
        path = tmp_path / "sup.npz"
        cfg = _base(max_iters=6, checkpoint_every=2, checkpoint_path=path)

        class _CrashAfterCheckpoint(_Flaky):
            def __call__(self, t, config=None, **kw):
                self.calls += 1
                self.configs.append(config)
                if self.calls == 1:
                    # Simulate a crash mid-run, after a checkpoint landed.
                    cstf(t, _base(max_iters=2, checkpoint_every=2,
                                  checkpoint_path=path))
                    raise RuntimeError("died after iteration 2")
                return cstf(t, config, **kw)

        flaky = patch_cstf(_CrashAfterCheckpoint(failures=0))
        sup = RunSupervisor(cfg, SupervisorConfig(max_retries=2),
                            sleep=lambda s: None)
        result = sup.run(tensor)
        assert flaky.configs[1].resume_from == path
        assert result.start_iteration == 2
        assert result.iterations == 6
        retry = [e for e in result.events if e.kind == "run_retry"][0]
        assert "resuming from" in retry.detail
        # The resumed supervised run matches an uninterrupted run exactly.
        straight = cstf(tensor, _base(max_iters=6))
        for a, b in zip(straight.kruskal.factors, result.kruskal.factors):
            assert np.array_equal(a, b)

    def test_resume_disabled(self, tensor, tmp_path, patch_cstf):
        path = tmp_path / "sup.npz"
        cstf(tensor, _base(max_iters=2, checkpoint_every=2, checkpoint_path=path))
        flaky = patch_cstf(_Flaky(failures=1))
        sup = RunSupervisor(
            _base(checkpoint_every=2, checkpoint_path=path),
            SupervisorConfig(max_retries=1, resume=False),
            sleep=lambda s: None,
        )
        sup.run(tensor)
        assert flaky.configs[1].resume_from is None


class TestSupervisedChaosEndToEnd:
    def test_execution_faults_recover_bit_identically(self, tensor):
        """Full acceptance path: a supervised run with every execution fault
        kind injected completes with factors identical to a fault-free run,
        with the recoveries on the event log."""
        plain = cstf(tensor, _base())
        inj = FaultInjector(
            [
                FaultSpec("EXECUTE", "worker_crash", probability=0.6),
                FaultSpec("EXECUTE", "corrupt_plan", probability=0.4),
            ],
            seed=21,
        )
        result = supervised_cstf(
            tensor,
            _base(engine={"shards": 3, "chunk": 128}, fault_injector=inj),
        )
        assert inj.injected > 0
        for a, b in zip(plain.kruskal.factors, result.kruskal.factors):
            assert np.array_equal(a, b)
        kinds = {e.kind for e in result.events}
        assert "fault_injected" in kinds

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisorConfig(max_retries=-1)
        with pytest.raises(ValueError, match="deadline"):
            SupervisorConfig(deadline=-1.0)
        with pytest.raises(ValueError, match="jitter"):
            SupervisorConfig(jitter=2.0)
