"""Resilience-layer tests: guards, recovery, checkpoint, fault injection."""
