"""Checkpointed metrics: a resumed run continues telemetry without gaps."""

import pytest

from repro.core.cstf import cstf
from repro.resilience import load_checkpoint
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.telemetry


@pytest.fixture
def tensor():
    return random_sparse((14, 11, 9), nnz=260, seed=7)


def _run(tensor, telemetry, **kw):
    return cstf(tensor, rank=3, seed=3, tol=0.0, update="admm",
                device="cpu", mttkrp_format="coo",
                update_params={"inner_iters": 4}, telemetry=telemetry, **kw)


class TestCheckpointedTelemetry:
    def test_registry_state_rides_in_checkpoint(self, tensor, tmp_path):
        path = tmp_path / "half.npz"
        _run(tensor, "on", max_iters=4, checkpoint_every=2, checkpoint_path=path)
        state = load_checkpoint(path).telemetry_state
        assert state is not None
        assert state["counters"]["cstf.outer_iterations"] == 4.0
        assert state["histograms"]["admm.inner_iters"]["count"] == 4 * 3

    def test_untraced_run_writes_no_telemetry_state(self, tensor, tmp_path):
        path = tmp_path / "plain.npz"
        _run(tensor, "off", max_iters=2, checkpoint_every=2, checkpoint_path=path)
        assert load_checkpoint(path).telemetry_state is None

    def test_resume_continues_metrics_without_gap(self, tensor, tmp_path):
        """4 + resume + 4 iterations must report the same cumulative metrics
        as 8 straight iterations — counters keep counting, histograms keep
        their earlier samples."""
        straight = _run(tensor, "on", max_iters=8)

        path = tmp_path / "half.npz"
        _run(tensor, "on", max_iters=4, checkpoint_every=4, checkpoint_path=path)
        resumed = _run(tensor, "on", max_iters=8, resume_from=path)

        full = straight.telemetry.metrics_summary
        cont = resumed.telemetry.metrics_summary
        assert cont["counters"]["cstf.outer_iterations"] == \
            full["counters"]["cstf.outer_iterations"] == 8.0
        assert cont["counters"]["cstf.resumes"] == 1.0
        for name in ("admm.inner_iters", "cstf.fit", "admm.rho"):
            assert cont["histograms"][name]["count"] == \
                full["histograms"][name]["count"], name
        # The fit trajectory is bit-identical across the resume, so the
        # cumulative fit histogram matches the straight run exactly.
        assert cont["histograms"]["cstf.fit"]["mean"] == \
            full["histograms"]["cstf.fit"]["mean"]

    def test_resume_into_untraced_run_ignores_state(self, tensor, tmp_path):
        path = tmp_path / "half.npz"
        _run(tensor, "on", max_iters=4, checkpoint_every=4, checkpoint_path=path)
        res = _run(tensor, "off", max_iters=8, resume_from=path)
        assert res.telemetry is None
        assert res.iterations == 8
