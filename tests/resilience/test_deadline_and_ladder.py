"""The cooperative in-run deadline and the process rung of the ladder.

A long-running attempt must stop *at an AO iteration boundary* when the
supervisor's wall-clock budget is crossed — checkpointing the completed
iterate first — rather than only noticing between attempts. And a run
that starts on the ``processes`` backend degrades one rung to the same
sharded configuration on threads before the classic ladder takes over.
"""

import sys

import numpy as np
import pytest

from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.engine.config import EngineConfig
from repro.resilience import (
    DeadlineInterrupt,
    ResilienceError,
    RunSupervisor,
    SupervisorConfig,
    load_checkpoint,
    supervised_cstf,
)
from repro.resilience.supervisor import _ladder
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def tensor():
    return random_sparse((16, 12, 10), nnz=420, seed=7)


class FakeClock:
    """Monotonic clock advancing one second per reading (first reading 0)."""

    def __init__(self):
        self.t = -1.0

    def __call__(self):
        self.t += 1.0
        return self.t


def _noop_sleep(_):  # pragma: no cover - timing glue
    pass


class TestProcessLadderRung:
    def test_processes_rung_tops_the_ladder(self):
        engine = EngineConfig(shards=4, chunk=128, backend="processes")
        rungs = _ladder(engine)
        assert [name for name, _ in rungs] == [
            "process engine", "sharded engine", "chunked engine",
            "serial engine", "seed kernels",
        ]
        assert rungs[0][1].backend == "processes"
        # One step down: identical sharding, thread dispatch — crash
        # isolation is lost, the parallel numerics are not.
        assert rungs[1][1].backend == "threads"
        assert rungs[1][1].shards == 4
        assert rungs[2][1].shards == 1 and rungs[2][1].chunk == 128
        assert rungs[3][1].chunk == 0
        assert rungs[4][1] is None

    def test_threads_backend_has_no_process_rung(self):
        rungs = _ladder(EngineConfig(shards=4, backend="threads"))
        assert [name for name, _ in rungs][0] == "sharded engine"

    def test_unsharded_processes_backend_has_no_process_rung(self):
        rungs = _ladder(EngineConfig(shards=1, backend="processes"))
        assert "process engine" not in [name for name, _ in rungs]

    def test_degrades_to_threads_on_repeated_failure(self, tensor, monkeypatch):
        calls = []
        real_cstf = cstf

        def flaky(t, config=None, **kw):
            calls.append(config)
            if len(calls) == 1:
                raise RuntimeError("worker pool exploded")
            return real_cstf(t, config, **kw)

        monkeypatch.setattr(sys.modules["repro.core.cstf"], "cstf", flaky)
        config = CstfConfig(
            rank=3, max_iters=2, seed=2,
            engine=EngineConfig(shards=2, backend="processes"),
        )
        sup = RunSupervisor(
            config, SupervisorConfig(max_retries=0, backoff_base=0.0),
            sleep=_noop_sleep,
        )
        result = sup.run(tensor)
        assert calls[0].engine.backend == "processes"
        assert calls[1].engine.backend == "threads"
        assert calls[1].engine.shards == 2
        (degraded,) = [e for e in result.events
                       if e.kind == "execution_degraded"]
        assert degraded.data["from_tier"] == "process engine"
        assert degraded.data["to_tier"] == "sharded engine"


class TestInRunDeadline:
    def test_guard_stops_at_iteration_boundary(self, tensor, tmp_path):
        path = tmp_path / "run.npz"
        clock = FakeClock()
        with pytest.raises(ResilienceError, match="deadline") as ei:
            supervised_cstf(
                tensor, rank=3, max_iters=30, seed=3, tol=0.0,
                checkpoint_every=1, checkpoint_path=path,
                supervisor=SupervisorConfig(deadline=2.5, max_retries=0),
                clock=clock, sleep=_noop_sleep,
            )
        (event,) = [e for e in ei.value.events
                    if e.kind == "deadline_exceeded"]
        assert "iteration boundary" in event.detail
        assert event.data["checkpointed"] is True
        # clock readings: start=0, then one per completed iteration — the
        # guard tripped after iteration 3 crossed the 2.5s budget, and that
        # iterate is on disk.
        assert load_checkpoint(path).iteration == 3

    def test_interrupted_run_resumes_bit_identically(self, tensor, tmp_path):
        path = tmp_path / "run.npz"
        straight = cstf(tensor, rank=3, max_iters=8, seed=3, tol=0.0)
        with pytest.raises(ResilienceError):
            supervised_cstf(
                tensor, rank=3, max_iters=8, seed=3, tol=0.0,
                checkpoint_every=1, checkpoint_path=path,
                supervisor=SupervisorConfig(deadline=2.5, max_retries=0),
                clock=FakeClock(), sleep=_noop_sleep,
            )
        resumed = cstf(tensor, rank=3, max_iters=8, seed=3, tol=0.0,
                       resume_from=path)
        for a, b in zip(straight.kruskal.factors, resumed.kruskal.factors):
            assert np.array_equal(a, b)

    def test_no_checkpoint_config_reports_uncheckpointed(self, tensor):
        with pytest.raises(ResilienceError) as ei:
            supervised_cstf(
                tensor, rank=3, max_iters=30, seed=3, tol=0.0,
                supervisor=SupervisorConfig(deadline=1.5, max_retries=0),
                clock=FakeClock(), sleep=_noop_sleep,
            )
        (event,) = [e for e in ei.value.events
                    if e.kind == "deadline_exceeded"]
        assert event.data["checkpointed"] is False

    def test_user_callback_still_runs_under_the_guard(self, tensor):
        seen = []
        result = supervised_cstf(
            tensor, rank=3, max_iters=3, seed=3, tol=0.0,
            on_iteration=seen.append,
            supervisor=SupervisorConfig(deadline=1000.0),
            clock=FakeClock(), sleep=_noop_sleep,
        )
        assert seen == [1, 2, 3]
        assert result.iterations == 3

    def test_zero_deadline_never_wraps_the_callback(self, tensor):
        """No deadline: the config's own callback is passed through as-is
        and nothing raises DeadlineInterrupt."""
        seen = []
        result = supervised_cstf(
            tensor, rank=3, max_iters=2, seed=3, tol=0.0,
            on_iteration=seen.append,
        )
        assert seen == [1, 2]
        assert result.events == []


class TestOnIterationCallback:
    def test_exception_checkpoints_completed_iterate(self, tensor, tmp_path):
        path = tmp_path / "run.npz"

        class Stop(Exception):
            pass

        def stop_after_two(iteration):
            if iteration == 2:
                raise Stop

        with pytest.raises(Stop):
            cstf(tensor, rank=3, max_iters=8, seed=3, tol=0.0,
                 checkpoint_every=100, checkpoint_path=path,
                 on_iteration=stop_after_two)
        # checkpoint_every would not have fired yet: the interrupt path
        # wrote the iterate itself.
        assert load_checkpoint(path).iteration == 2
        straight = cstf(tensor, rank=3, max_iters=8, seed=3, tol=0.0)
        resumed = cstf(tensor, rank=3, max_iters=8, seed=3, tol=0.0,
                       resume_from=path)
        for a, b in zip(straight.kruskal.factors, resumed.kruskal.factors):
            assert np.array_equal(a, b)

    def test_callback_without_checkpointing_just_raises(self, tensor):
        def boom(iteration):
            raise DeadlineInterrupt("stop")

        with pytest.raises(DeadlineInterrupt):
            cstf(tensor, rank=3, max_iters=4, seed=3, tol=0.0,
                 on_iteration=boom)

    def test_on_iteration_must_be_callable(self):
        with pytest.raises(ValueError, match="on_iteration"):
            CstfConfig(rank=3, on_iteration=5)
