"""Torn-write recovery: a corrupt primary checkpoint falls back to the
rotated ``.prev`` generation, the fallback is surfaced (warning at the
file layer, ``checkpoint_corrupt`` event on a resumed run), and a resume
through the fallback still converges to the uninterrupted run's bits.
"""

import warnings

import numpy as np
import pytest

from repro.core.cstf import cstf
from repro.resilience import (
    CheckpointCorrupt,
    ResilienceError,
    load_checkpoint,
    save_checkpoint,
)
from repro.tensor.synthetic import random_sparse


@pytest.fixture
def tensor():
    return random_sparse((14, 11, 9), nnz=260, seed=7)


def _save(path, iteration):
    rng = np.random.default_rng(iteration)
    factors = [rng.random((6, 3)), rng.random((5, 3))]
    save_checkpoint(
        path, iteration=iteration, factors=factors, weights=np.ones(3),
        grams=[f.T @ f for f in factors], fits=[0.1 * iteration],
        meta={"shape": [6, 5], "rank": 3},
    )


def _corrupt(path, nbytes=64):
    """Flip bytes mid-file: the archive still opens, the checksum fails."""
    pos = max(path.stat().st_size // 2, 0)
    with open(path, "r+b") as fh:
        fh.seek(pos)
        chunk = fh.read(nbytes)
        fh.seek(pos)
        fh.write(bytes((b ^ 0xFF) for b in chunk) or b"\xff")


class TestPrevFallback:
    def test_corrupt_primary_loads_prev_with_warning(self, tmp_path):
        path = tmp_path / "run.npz"
        _save(path, 1)
        _save(path, 2)  # rotates generation 1 to run.npz.prev
        _corrupt(path)
        with pytest.warns(CheckpointCorrupt, match="falling back"):
            ckpt = load_checkpoint(path)
        assert ckpt.iteration == 1

    def test_missing_primary_loads_prev_with_warning(self, tmp_path):
        path = tmp_path / "run.npz"
        _save(path, 1)
        _save(path, 2)
        path.unlink()  # crash between payload write and publish
        with pytest.warns(CheckpointCorrupt, match="missing"):
            ckpt = load_checkpoint(path)
        assert ckpt.iteration == 1

    def test_truncated_primary_loads_prev(self, tmp_path):
        path = tmp_path / "run.npz"
        _save(path, 1)
        _save(path, 2)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        with pytest.warns(CheckpointCorrupt):
            assert load_checkpoint(path).iteration == 1

    def test_both_generations_corrupt_raises(self, tmp_path):
        path = tmp_path / "run.npz"
        _save(path, 1)
        _save(path, 2)
        _corrupt(path)
        _corrupt(path.with_name(path.name + ".prev"))
        with pytest.warns(CheckpointCorrupt):
            with pytest.raises(ResilienceError, match="previous generation"):
                load_checkpoint(path)

    def test_corrupt_primary_without_prev_raises(self, tmp_path):
        path = tmp_path / "run.npz"
        _save(path, 1)  # first save: nothing to rotate
        _corrupt(path)
        with pytest.raises(ResilienceError, match="no previous generation"):
            load_checkpoint(path)


class TestResumeThroughFallback:
    def test_resume_records_event_and_matches_straight_run(
        self, tensor, tmp_path
    ):
        path = tmp_path / "run.npz"
        straight = cstf(tensor, rank=3, max_iters=8, seed=3, tol=0.0)
        cstf(tensor, rank=3, max_iters=5, seed=3, tol=0.0,
             checkpoint_every=1, checkpoint_path=path)
        _corrupt(path)  # primary (iteration 5) torn; .prev holds iteration 4
        with warnings.catch_warnings(record=True) as leaked:
            warnings.simplefilter("always")
            resumed = cstf(tensor, rank=3, max_iters=8, seed=3, tol=0.0,
                           resume_from=path)
        # The fallback is an event on the run, not a loose warning.
        assert not any(
            issubclass(w.category, CheckpointCorrupt) for w in leaked
        )
        corrupt_events = [
            e for e in resumed.events if e.kind == "checkpoint_corrupt"
        ]
        assert len(corrupt_events) == 1
        assert "falling back" in corrupt_events[0].detail
        # Resuming from the older generation replays iteration 5
        # deterministically: same bits as the uninterrupted run.
        for a, b in zip(straight.kruskal.factors, resumed.kruskal.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(
            straight.kruskal.weights, resumed.kruskal.weights
        )
