"""ENOSPC-safe persistence: checkpoints, the plan store, and resume.

Persistence failures must never fail a run that can still compute — the
checkpoint layer keeps its last completed generation (and its ``.prev``)
and records ``checkpoint_skipped``; the plan store skips the write and
records ``store_skipped``; resume after the failure is bit-identical.
"""

import errno
import warnings

import numpy as np
import pytest

import sys

from repro.core.cstf import cstf

# The package re-exports the `cstf` function under the same dotted name, so
# fetch the module object itself for monkeypatching.
cstf_mod = sys.modules["repro.core.cstf"]
from repro.engine.config import EngineConfig
from repro.engine.driver import engine_mttkrp
from repro.engine.plan import PlanCache, _content_hash
from repro.engine.plan_store import PlanStore, store_key
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.resilience import FaultInjector, FaultSpec, load_checkpoint
from repro.resilience.checkpoint import save_checkpoint
from repro.resilience.events import CHECKPOINT_SKIPPED, STORE_SKIPPED, EventLog
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.faults


@pytest.fixture
def tensor():
    return random_sparse((14, 11, 9), nnz=260, seed=7)


def _enospc(*_a, **_k):
    raise OSError(errno.ENOSPC, "No space left on device")


class TestCheckpointEnospc:
    def test_failed_write_preserves_both_generations(self, tmp_path, monkeypatch):
        path = tmp_path / "run.npz"

        def write(it):
            save_checkpoint(
                path, iteration=it, factors=[np.full((2, 2), float(it))],
                weights=np.ones(2), grams=[np.eye(2)], fits=[],
                state_arrays={}, rng_state=None, meta={"shape": [2], "rank": 2},
            )

        write(2)
        write(4)  # rotates iter-2 to .prev
        monkeypatch.setattr(np, "savez_compressed", _enospc)
        with pytest.raises(OSError):
            write(6)
        # No temp debris, and both generations survived untouched.
        assert not list(tmp_path.glob("*.tmp"))
        assert load_checkpoint(path).iteration == 4
        prev = path.with_name(path.name + ".prev")
        assert load_checkpoint(prev).iteration == 2

    def test_run_survives_enospc_and_records_skip(self, tmp_path, monkeypatch):
        tensor = random_sparse((14, 11, 9), nnz=260, seed=7)
        path = tmp_path / "ck.npz"
        calls = {"n": 0}
        real = cstf_mod.save_checkpoint

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:  # iterations 2 and 4 persist, 6+ hit ENOSPC
                _enospc()
            return real(*args, **kwargs)

        monkeypatch.setattr(cstf_mod, "save_checkpoint", flaky)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a warning leak fails the test
            result = cstf(
                tensor, rank=4, max_iters=8, seed=0, tol=0.0,
                checkpoint_every=2, checkpoint_path=str(path),
            )
        assert result.iterations == 8
        skips = [e for e in result.events if e.kind == CHECKPOINT_SKIPPED]
        assert [e.iteration for e in skips] == [6, 8]
        assert load_checkpoint(path).iteration == 4
        prev = path.with_name(path.name + ".prev")
        assert load_checkpoint(prev).iteration == 2

    def test_resume_after_enospc_is_bit_identical(self, tmp_path, monkeypatch):
        tensor = random_sparse((14, 11, 9), nnz=260, seed=7)
        baseline = cstf(tensor, rank=4, max_iters=8, seed=0, tol=0.0)

        path = tmp_path / "ck.npz"
        calls = {"n": 0}
        real = cstf_mod.save_checkpoint

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] >= 3:
                _enospc()
            return real(*args, **kwargs)

        monkeypatch.setattr(cstf_mod, "save_checkpoint", flaky)
        cstf(
            tensor, rank=4, max_iters=8, seed=0, tol=0.0,
            checkpoint_every=2, checkpoint_path=str(path),
        )
        monkeypatch.setattr(cstf_mod, "save_checkpoint", real)
        # The last completed checkpoint is iteration 4; resuming from it
        # must land bit-identically on the uninterrupted trajectory.
        resumed = cstf(
            tensor, rank=4, max_iters=8, seed=0, tol=0.0, resume_from=str(path),
        )
        assert resumed.iterations == 8
        for a, b in zip(resumed.kruskal.factors, baseline.kruskal.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(resumed.kruskal.weights, baseline.kruskal.weights)

    def test_injected_disk_full_skips_checkpoints(self, tmp_path):
        tensor = random_sparse((14, 11, 9), nnz=260, seed=7)
        path = tmp_path / "ck.npz"
        injector = FaultInjector(
            FaultSpec(phase="EXECUTE", kind="disk_full", probability=1.0), seed=3
        )
        result = cstf(
            tensor, rank=4, max_iters=6, seed=0, tol=0.0,
            checkpoint_every=2, checkpoint_path=str(path),
            fault_injector=injector,
        )
        assert result.iterations == 6
        assert not path.exists()  # every write drew the fault
        assert [e.iteration for e in result.events
                if e.kind == CHECKPOINT_SKIPPED] == [2, 4, 6]
        # The injected fault itself is on the audit trail.
        assert any(
            e.kind == "fault_injected" and e.data.get("target") == "checkpoint"
            for e in result.events
        )


class TestPlanStoreEnospc:
    def test_save_skips_on_oserror(self, tmp_path, monkeypatch):
        tensor = random_sparse((10, 8, 6), nnz=120, seed=1)
        cache = PlanCache()
        cache.store = PlanStore(tmp_path / "store")
        events = EventLog()
        monkeypatch.setattr(np, "savez_compressed", _enospc)
        plan = cache.plan(tensor, 0, events=events)  # must not raise
        assert plan is not None
        assert plan.store_key is None
        assert cache.store.write_errors == 1
        assert len(cache.store) == 0
        assert not list((tmp_path / "store").glob("*.tmp"))
        skips = events.of_kind(STORE_SKIPPED)
        assert len(skips) == 1 and "skipping persistence" in skips[0].detail

    def test_fail_next_write_arm_is_one_shot(self, tmp_path):
        tensor = random_sparse((10, 8, 6), nnz=120, seed=1)
        cache = PlanCache()
        cache.store = PlanStore(tmp_path / "store")
        cache.store.fail_next_write = True
        events = EventLog()
        plan = cache.plan(tensor, 0, events=events)
        assert plan.store_key is None and len(cache.store) == 0
        assert not cache.store.fail_next_write
        # Next lookup backfills the entry now that the "disk" has space.
        plan2 = cache.plan(tensor, 0, events=events)
        assert plan2 is plan
        assert plan2.store_key == store_key(_content_hash(tensor), "coo", 0)
        assert len(cache.store) == 1
        assert cache.store.stats()["write_errors"] == 1

    def test_engine_dispatch_survives_injected_store_disk_full(self, tmp_path):
        tensor = random_sparse((14, 11, 9), nnz=260, seed=7)
        rng = np.random.default_rng(0)
        factors = [rng.random((d, 4)) for d in tensor.shape]
        cfg = EngineConfig(chunk=64, plan_store=str(tmp_path / "store"))
        injector = FaultInjector(
            FaultSpec(phase="EXECUTE", kind="disk_full", probability=1.0), seed=5
        )
        events = EventLog()
        cache = PlanCache()
        for mode in range(tensor.ndim):
            got = engine_mttkrp(
                tensor, factors, mode, "coo", cfg, cache,
                faults=injector, events=events,
            )
            assert np.array_equal(got, mttkrp_coo(tensor, factors, mode))
        assert not list((tmp_path / "store").glob("*.npz"))
        assert len(events.of_kind(STORE_SKIPPED)) == tensor.ndim
        assert cache.store.write_errors == tensor.ndim
