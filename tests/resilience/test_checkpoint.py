"""Atomic checkpoint/resume: bit-identical continuation of a cSTF run."""

import os

import numpy as np
import pytest

from repro.core.cstf import cstf
from repro.resilience import (
    CheckpointCorrupt,
    ResilienceError,
    load_checkpoint,
    save_checkpoint,
)
from repro.tensor.synthetic import random_sparse


@pytest.fixture
def tensor():
    return random_sparse((14, 11, 9), nnz=260, seed=7)


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.npz"
        rng = np.random.default_rng(0)
        factors = [rng.random((6, 3)), rng.random((5, 3))]
        save_checkpoint(
            path,
            iteration=4,
            factors=factors,
            weights=np.array([1.0, 2.0, 3.0]),
            grams=[f.T @ f for f in factors],
            fits=[0.1, 0.5],
            state_arrays={"dual": [np.zeros((6, 3)), np.zeros((5, 3))]},
            rng_state={"bit_generator": "PCG64"},
            meta={"shape": [6, 5], "rank": 3},
        )
        ckpt = load_checkpoint(path)
        assert ckpt.iteration == 4
        assert ckpt.shape == (6, 5)
        assert ckpt.rank == 3
        for a, b in zip(ckpt.factors, factors):
            assert np.array_equal(a, b)
        assert np.array_equal(ckpt.weights, [1.0, 2.0, 3.0])
        assert ckpt.fits == [0.1, 0.5]
        assert ckpt.rng_state == {"bit_generator": "PCG64"}
        dual = ckpt.state_arrays["dual"]
        assert isinstance(dual, list) and len(dual) == 2

    def test_write_is_atomic(self, tmp_path):
        """No ``.tmp`` debris after a successful save — the temp file is
        renamed over the destination, never left behind."""
        path = tmp_path / "run.npz"
        save_checkpoint(
            path, iteration=1, factors=[np.ones((2, 2))], weights=np.ones(2),
            grams=[np.eye(2)], fits=[], state_arrays={}, rng_state=None,
            meta={"shape": [2], "rank": 2},
        )
        assert path.exists()
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_overwrite_keeps_last_complete_checkpoint(self, tmp_path):
        path = tmp_path / "run.npz"
        for it in (1, 2):
            save_checkpoint(
                path, iteration=it, factors=[np.full((2, 2), float(it))],
                weights=np.ones(2), grams=[np.eye(2)], fits=[],
                state_arrays={}, rng_state=None, meta={"shape": [2], "rank": 2},
            )
        assert load_checkpoint(path).iteration == 2


class TestDriverCheckpointing:
    def test_checkpoint_written_every_k_iterations(self, tensor, tmp_path):
        path = tmp_path / "cp.npz"
        result = cstf(
            tensor, rank=3, max_iters=6, seed=0,
            checkpoint_every=2, checkpoint_path=path,
        )
        assert path.exists()
        ckpt = load_checkpoint(path)
        assert ckpt.iteration == 6
        saves = [e for e in result.events if e.kind == "checkpoint_saved"]
        assert len(saves) == 3  # iterations 2, 4, 6

    def test_checkpoint_every_requires_path(self, tensor):
        with pytest.raises(ValueError, match="checkpoint_path"):
            cstf(tensor, rank=3, max_iters=2, checkpoint_every=1)

    def test_resume_is_bit_identical(self, tensor, tmp_path):
        """Satellite: 10 outer iterations straight vs. 5 + resume + 5 must
        produce identical factors, weights, and fit trajectories."""
        straight = cstf(tensor, rank=3, max_iters=10, seed=3, tol=0.0)

        path = tmp_path / "half.npz"
        first = cstf(
            tensor, rank=3, max_iters=5, seed=3, tol=0.0,
            checkpoint_every=5, checkpoint_path=path,
        )
        assert first.iterations == 5
        second = cstf(
            tensor, rank=3, max_iters=10, seed=3, tol=0.0, resume_from=path
        )
        assert second.start_iteration == 5
        assert second.iterations == 10
        for a, b in zip(straight.kruskal.factors, second.kruskal.factors):
            assert np.array_equal(a, b)
        assert np.array_equal(straight.kruskal.weights, second.kruskal.weights)
        assert straight.fits == second.fits
        resumed = [e for e in second.events if e.kind == "checkpoint_resumed"]
        assert len(resumed) == 1

    def test_resume_validates_shape_and_rank(self, tensor, tmp_path):
        path = tmp_path / "cp.npz"
        cstf(tensor, rank=3, max_iters=2, seed=0,
             checkpoint_every=2, checkpoint_path=path)
        other = random_sparse((8, 8, 8), nnz=64, seed=1)
        with pytest.raises(ValueError, match="shape"):
            cstf(other, rank=3, max_iters=4, resume_from=path)
        with pytest.raises(ValueError, match="rank"):
            cstf(tensor, rank=4, max_iters=4, resume_from=path)

    def test_resume_after_convergence_checkpoint(self, tensor, tmp_path):
        """A checkpoint taken on the converged iteration resumes cleanly:
        the continuation re-checks convergence and stops immediately."""
        path = tmp_path / "cp.npz"
        first = cstf(tensor, rank=3, max_iters=30, seed=2, tol=1e-6,
                     checkpoint_every=1, checkpoint_path=path)
        second = cstf(tensor, rank=3, max_iters=30, seed=2, tol=1e-6,
                      resume_from=path)
        assert second.iterations >= first.iterations
        for b in second.kruskal.factors:
            assert np.isfinite(b).all()


def _save(path, iteration=1, value=1.0):
    save_checkpoint(
        path, iteration=iteration, factors=[np.full((3, 2), value)],
        weights=np.ones(2), grams=[np.eye(2)], fits=[0.5],
        state_arrays={}, rng_state=None, meta={"shape": [3], "rank": 2},
    )


class TestTornWriteProtection:
    """The two extra layers beyond atomic rename: generation rotation and
    payload checksums, with transparent ``.prev`` fallback."""

    def test_save_rotates_previous_generation(self, tmp_path):
        path = tmp_path / "cp.npz"
        _save(path, iteration=1)
        assert not (tmp_path / "cp.npz.prev").exists()
        _save(path, iteration=2)
        prev = tmp_path / "cp.npz.prev"
        assert prev.exists()
        assert load_checkpoint(path).iteration == 2
        assert load_checkpoint(prev).iteration == 1

    def test_torn_primary_falls_back_to_prev(self, tmp_path):
        path = tmp_path / "cp.npz"
        _save(path, iteration=1)
        _save(path, iteration=2)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.warns(CheckpointCorrupt, match="previous generation"):
            ckpt = load_checkpoint(path)
        assert ckpt.iteration == 1

    def test_garbage_primary_falls_back_to_prev(self, tmp_path):
        path = tmp_path / "cp.npz"
        _save(path, iteration=1)
        _save(path, iteration=2)
        path.write_bytes(b"not an npz archive at all")
        with pytest.warns(CheckpointCorrupt):
            assert load_checkpoint(path).iteration == 1

    def test_missing_primary_with_prev_warns_and_loads(self, tmp_path):
        path = tmp_path / "cp.npz"
        _save(path, iteration=1)
        _save(path, iteration=2)
        path.unlink()
        with pytest.warns(CheckpointCorrupt, match="missing"):
            assert load_checkpoint(path).iteration == 1

    def test_both_generations_corrupt_raises(self, tmp_path):
        path = tmp_path / "cp.npz"
        _save(path, iteration=1)
        _save(path, iteration=2)
        path.write_bytes(b"garbage")
        (tmp_path / "cp.npz.prev").write_bytes(b"also garbage")
        with pytest.warns(CheckpointCorrupt):
            with pytest.raises(ResilienceError, match="previous generation"):
                load_checkpoint(path)

    def test_corrupt_without_prev_raises(self, tmp_path):
        path = tmp_path / "cp.npz"
        _save(path)
        path.write_bytes(b"garbage")
        with pytest.raises(ResilienceError, match="no previous generation"):
            load_checkpoint(path)

    def test_missing_both_is_plain_error(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            load_checkpoint(tmp_path / "never.npz")

    def test_checksum_detects_flipped_payload_bytes(self, tmp_path):
        """A rewritten payload array with plausible structure still fails
        the checksum — bit rot is caught, not just truncation."""
        path = tmp_path / "cp.npz"
        _save(path, iteration=3, value=1.0)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        arrays["factor_0"] = arrays["factor_0"] + 1.0
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        with pytest.raises(ResilienceError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_legacy_checkpoint_without_checksum_loads(self, tmp_path):
        """Checkpoints from before checksums existed stay readable."""
        path = tmp_path / "cp.npz"
        _save(path, iteration=5)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        import json as _json
        meta = _json.loads(str(arrays["meta_json"]))
        del meta["checksum"]
        arrays["meta_json"] = np.array(_json.dumps(meta))
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        assert load_checkpoint(path).iteration == 5

    def test_driver_run_survives_torn_checkpoint(self, tensor, tmp_path):
        """End to end: a resume pointed at a torn file transparently uses
        the rotated generation and stays bit-identical from there. The
        driver surfaces the fallback as a ``checkpoint_corrupt`` event on
        the run (the warning stays at the file-layer API)."""
        straight = cstf(tensor, rank=3, max_iters=6, seed=3, tol=0.0)
        path = tmp_path / "cp.npz"
        cstf(tensor, rank=3, max_iters=4, seed=3, tol=0.0,
             checkpoint_every=2, checkpoint_path=path)
        # The primary holds iteration 4, the rotation iteration 2. Tear
        # the primary: the resume must fall back to iteration 2.
        path.write_bytes(path.read_bytes()[:100])
        resumed = cstf(tensor, rank=3, max_iters=6, seed=3, tol=0.0,
                       resume_from=path)
        assert resumed.start_iteration == 2
        assert any(e.kind == "checkpoint_corrupt" for e in resumed.events)
        for a, b in zip(straight.kruskal.factors, resumed.kruskal.factors):
            assert np.array_equal(a, b)
