"""ADMM divergence recovery: rollback, ρ-rescale, restart, give-up."""

import numpy as np
import pytest

from repro.machine.executor import Executor
from repro.resilience import ResilienceContext, ResiliencePolicy
from repro.resilience.policy import STATE_KEY
from repro.updates.admm import AdmmUpdate, cuadmm
from repro.updates.blocked_admm import BlockedAdmmUpdate


def _problem(rows=12, rank=3, seed=0):
    """A healthy (M, S, H) triple for a nonnegative update."""
    rng = np.random.default_rng(seed)
    h_true = rng.random((rows, rank))
    s = h_true.T @ h_true + rank * np.eye(rank)
    m = rng.random((rows, rank))
    h0 = rng.random((rows, rank))
    return m, s, h0


def _state_with_ctx(update, rows, rank, policy=None):
    state = update.init_state((rows, rank), rank)
    ctx = ResilienceContext(policy or ResiliencePolicy())
    state[STATE_KEY] = ctx
    return state, ctx


class TestCleanPathUnchanged:
    @pytest.mark.parametrize("factory", [AdmmUpdate, cuadmm, BlockedAdmmUpdate])
    def test_context_does_not_change_healthy_numerics(self, factory):
        """With no faults, resilient and fail-fast updates are bit-identical."""
        m, s, h0 = _problem()
        upd_a, upd_b = factory(), factory()
        state_plain = upd_a.init_state((12, 3), 3)
        out_plain = upd_a.update(Executor("a100"), 0, m, s, h0.copy(), state_plain)
        state_ctx, ctx = _state_with_ctx(upd_b, 12, 3)
        out_ctx = upd_b.update(Executor("a100"), 0, m, s, h0.copy(), state_ctx)
        assert np.array_equal(out_plain, out_ctx)
        assert len(ctx.events) == 0


class TestDivergenceRecovery:
    def test_nan_rhs_triggers_full_escalation_and_stays_finite(self):
        """A NaN M makes every iterate non-finite: the update must roll back,
        rescale ρ, restart fresh, finally give up — and still return the
        last finite iterate instead of garbage."""
        m, s, h0 = _problem()
        m = m.copy()
        m[0, 0] = np.nan
        update = AdmmUpdate()
        policy = ResiliencePolicy(max_admm_failures=2)
        state, ctx = _state_with_ctx(update, 12, 3, policy)
        out = update.update(Executor("a100"), 0, m, s, h0.copy(), state)
        assert np.isfinite(out).all()
        assert np.isfinite(state["dual"][0]).all()
        kinds = ctx.events.counts()
        assert kinds["admm_divergence"] == 4  # 2 rollbacks + restart + give-up
        assert kinds["admm_rho_rescale"] == 2
        assert kinds["admm_restart"] == 1
        assert kinds["admm_giveup"] == 1

    def test_without_context_nan_fails_fast(self):
        """Historical fail-fast behavior: no context, no recovery — SciPy's
        finiteness check inside the triangular solve raises."""
        m, s, h0 = _problem()
        m = m.copy()
        m[0, 0] = np.nan
        update = AdmmUpdate()
        state = update.init_state((12, 3), 3)
        with pytest.raises(ValueError):
            update.update(Executor("a100"), 0, m, s, h0, state)

    def test_indefinite_gram_recovers_via_guarded_factorization(self):
        m, s, h0 = _problem()
        s_bad = s - (np.linalg.eigvalsh(s)[0] + 10 * np.trace(s)) * np.eye(3)
        update = AdmmUpdate()
        state, ctx = _state_with_ctx(update, 12, 3)
        out = update.update(Executor("a100"), 0, m, s_bad, h0, state)
        assert np.isfinite(out).all()
        assert len(ctx.events.of_kind("cholesky_jitter")) >= 1
        assert len(ctx.events.of_kind("cholesky_recovered")) >= 1

    def test_nonfinite_gram_sanitized(self):
        m, s, h0 = _problem()
        s_bad = s.copy()
        s_bad[0, 1] = np.inf
        update = AdmmUpdate()
        state, ctx = _state_with_ctx(update, 12, 3)
        out = update.update(Executor("a100"), 0, m, s_bad, h0, state)
        assert np.isfinite(out).all()
        assert len(ctx.events.of_kind("nonfinite_input")) == 1

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # NaN math pre-detection
    @pytest.mark.parametrize("flags", [{}, {"fuse_ops": True}, {"preinvert": True},
                                       {"fuse_ops": True, "preinvert": True}])
    def test_recovery_works_in_every_kernel_configuration(self, flags):
        """OF/PI change the kernel schedule, never the recovery semantics."""
        m, s, h0 = _problem(seed=3)
        m = m.copy()
        m[2, 1] = np.inf
        update = AdmmUpdate(**flags)
        state, ctx = _state_with_ctx(update, 12, 3)
        out = update.update(Executor("a100"), 0, m, s, h0, state)
        assert np.isfinite(out).all()
        assert len(ctx.events.of_kind("admm_giveup")) == 1


class TestBlockedAdmm:
    def test_blocked_update_shares_recovery_and_charges_refactorizations(self):
        m, s, h0 = _problem(rows=32)
        m = m.copy()
        m[0, 0] = np.nan
        update = BlockedAdmmUpdate(block_rows=8)
        state, ctx = _state_with_ctx(update, 32, 3, ResiliencePolicy(max_admm_failures=1))
        ex = Executor("cpu", keep_records=True)
        out = update.update(ex, 0, m, s, h0, state)
        assert np.isfinite(out).all()
        assert len(ctx.events.of_kind("admm_giveup")) == 1
        # One nominal DPOTRF plus one per recovery re-factorization.
        recoveries = len(ctx.events.of_kind("admm_rho_rescale")) + len(
            ctx.events.of_kind("admm_restart")
        ) + len(ctx.events.of_kind("cholesky_jitter"))
        assert recoveries >= 1
        potrfs = [r for r in ex.timeline.records if r.name == "dpotrf"]
        assert len(potrfs) == 1 + recoveries
