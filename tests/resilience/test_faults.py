"""Fault-injection campaigns: the acceptance gate for the resilience layer.

Every test here is marked ``faults`` and driven by seeded RNGs — run the
whole suite via ``python scripts/run_fault_suite.py``. The contract under
test: with injected corruption at *any* phase, ``cstf`` either completes
with finite factors or raises a structured ``ResilienceError`` — never an
unhandled ``LinAlgError``/``ValueError``, never silent NaN output.
"""

import numpy as np
import pytest

from repro.core.cstf import cstf
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    ResilienceError,
    ResiliencePolicy,
)
from repro.resilience.faults import NUMERIC_PHASES
from repro.tensor.synthetic import random_sparse

pytestmark = pytest.mark.faults

KINDS = ("nan", "inf", "perturb", "indefinite")


@pytest.fixture
def tensor():
    return random_sparse((13, 10, 8), nnz=240, seed=11)


def _run(tensor, injector, **overrides):
    return cstf(
        tensor, rank=3, max_iters=6, seed=0, tol=0.0,
        fault_injector=injector, **overrides,
    )


class TestInjectorDeterminism:
    def test_same_seed_same_faults(self, tensor):
        outs = []
        for _ in range(2):
            inj = FaultInjector(
                FaultSpec("MTTKRP", kind="perturb", probability=0.5), seed=42
            )
            res = _run(tensor, inj)
            outs.append((inj.injected, res.fits, [f.copy() for f in res.kruskal.factors]))
        assert outs[0][0] == outs[1][0] > 0
        assert outs[0][1] == outs[1][1]
        for a, b in zip(outs[0][2], outs[1][2]):
            assert np.array_equal(a, b)

    def test_different_seed_different_faults(self, tensor):
        fits = []
        for seed in (0, 1):
            inj = FaultInjector(
                FaultSpec("MTTKRP", kind="perturb", probability=0.5), seed=seed
            )
            fits.append(_run(tensor, inj).fits)
        assert fits[0] != fits[1]

    def test_zero_probability_is_a_clean_run(self, tensor):
        inj = FaultInjector(FaultSpec("UPDATE", probability=0.0), seed=0)
        faulty = _run(tensor, inj)
        clean = cstf(tensor, rank=3, max_iters=6, seed=0, tol=0.0)
        assert inj.injected == 0
        assert faulty.fits == clean.fits


class TestEveryPhaseEveryKind:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    @pytest.mark.parametrize("phase", NUMERIC_PHASES)
    @pytest.mark.parametrize("kind", KINDS)
    def test_completes_with_finite_factors(self, tensor, phase, kind):
        """The blanket guarantee: corruption anywhere, of any kind, and the
        default (repair) policy still delivers finite factors plus an event
        trail explaining what happened."""
        inj = FaultInjector(FaultSpec(phase, kind=kind, probability=0.6), seed=5)
        result = _run(tensor, inj)
        assert inj.injected > 0
        assert result.iterations == 6
        for f in result.kruskal.factors:
            assert np.isfinite(f).all()
        assert np.isfinite(result.kruskal.weights).all()
        injected = [e for e in result.events if e.kind == "fault_injected"]
        assert len(injected) == inj.injected
        assert all(e.phase == phase for e in injected)
        assert result.recoveries > 0

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    @pytest.mark.parametrize("phase", NUMERIC_PHASES)
    def test_raise_policy_raises_structured_error(self, tensor, phase):
        """With sentinel='raise', NaN corruption surfaces as ResilienceError
        carrying the event log — not LinAlgError, not silent NaNs."""
        inj = FaultInjector(FaultSpec(phase, kind="nan", probability=1.0), seed=1)
        try:
            result = _run(tensor, inj, resilience="raise")
        except ResilienceError as err:
            assert err.events  # structured: the history travels with it
        else:
            # GRAM-phase NaNs are sanitized before any sentinel sees the
            # factors, so the run may legitimately complete — but then the
            # factors must be finite and the recovery logged.
            for f in result.kruskal.factors:
                assert np.isfinite(f).all()
            assert result.recoveries > 0

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_all_phases_at_once(self, tensor):
        specs = [FaultSpec(p, kind="nan", probability=0.3) for p in NUMERIC_PHASES]
        inj = FaultInjector(specs, seed=9)
        result = _run(tensor, inj)
        assert inj.injected > 0
        for f in result.kruskal.factors:
            assert np.isfinite(f).all()

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_aggressive_policy_still_bounded(self, tensor):
        """Even a 100 %-probability campaign terminates (no retry loops run
        away) and yields finite output under the repair policy."""
        inj = FaultInjector(
            [FaultSpec(p, kind="inf", probability=1.0) for p in NUMERIC_PHASES],
            seed=2,
        )
        result = _run(
            tensor, inj,
            resilience=ResiliencePolicy(max_admm_failures=1, max_jitter_attempts=4),
        )
        assert result.iterations == 6
        for f in result.kruskal.factors:
            assert np.isfinite(f).all()


class TestFaultyCheckpointResume:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_resumed_faulty_run_replays_remaining_faults(self, tensor, tmp_path):
        """The injector RNG state rides in the checkpoint: 6 faulty
        iterations straight equal 3 + resume + 3, fault-for-fault."""
        spec = FaultSpec("MTTKRP", kind="perturb", probability=0.4, magnitude=50.0)

        straight = _run(tensor, FaultInjector(spec, seed=3))

        path = tmp_path / "faulty.npz"
        inj1 = FaultInjector(spec, seed=3)
        cstf(tensor, rank=3, max_iters=3, seed=0, tol=0.0, fault_injector=inj1,
             checkpoint_every=3, checkpoint_path=path)
        inj2 = FaultInjector(spec, seed=3)
        second = cstf(tensor, rank=3, max_iters=6, seed=0, tol=0.0,
                      fault_injector=inj2, resume_from=path)
        assert straight.fits == second.fits
        for a, b in zip(straight.kruskal.factors, second.kruskal.factors):
            assert np.array_equal(a, b)


class TestSpecValidation:
    def test_bad_phase_rejected(self):
        with pytest.raises(ValueError, match="phase"):
            FaultSpec("COMPILE")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("GRAM", kind="gamma-ray")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("GRAM", probability=1.5)

    def test_injector_requires_specs(self):
        with pytest.raises(ValueError, match="FaultSpec"):
            FaultInjector([])

    def test_injector_rejected_in_analytic_mode(self):
        from repro.machine.analytic import TensorStats

        stats = TensorStats.from_dims((100, 100, 100), nnz=10_000)
        inj = FaultInjector(FaultSpec("GRAM"), seed=0)
        with pytest.raises(ValueError, match="concrete"):
            cstf(stats, rank=4, max_iters=2, fault_injector=inj)
