"""Guarded Cholesky/inverse and the phase-boundary sentinels."""

import numpy as np
import pytest

from repro.linalg.cholesky import cholesky_factor
from repro.resilience import (
    EventLog,
    ResilienceContext,
    ResilienceError,
    ResiliencePolicy,
    ensure_finite,
    guarded_cholesky,
    guarded_spd_inverse,
    sanitize_nonfinite,
)


def _spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    return a @ a.T + n * np.eye(n)


def _indefinite(n, seed=0, deficit=5.0):
    """An explicitly indefinite symmetric matrix (negative eigenvalue)."""
    s = _spd(n, seed)
    return s - (np.linalg.eigvalsh(s)[0] + deficit) * np.eye(n)


class TestGuardedCholesky:
    def test_clean_path_matches_plain_factorization(self):
        s = _spd(6)
        l_guarded, shift = guarded_cholesky(s)
        assert shift == 0.0
        assert np.array_equal(l_guarded, cholesky_factor(s))

    def test_rho_loading_matches_plain_path_bitwise(self):
        """With a clean input, the guarded solve must be bit-identical to the
        historical S + ρI path (no behavioral drift for healthy runs)."""
        s = _spd(5, seed=1)
        rho = float(np.trace(s)) / 5
        l_guarded, shift = guarded_cholesky(s, rho=rho)
        assert shift == rho
        assert np.array_equal(l_guarded, cholesky_factor(s + rho * np.eye(5)))

    def test_indefinite_matrix_recovers_with_jitter(self):
        """Regression for the old docstring's claim that non-SPD input
        'cannot happen': it can, and the guarded path must absorb it."""
        s = _indefinite(6, seed=2)
        with pytest.raises(np.linalg.LinAlgError):
            cholesky_factor(s)  # the raw path still fails loudly
        events = EventLog()
        l_factor, shift = guarded_cholesky(s, events=events)
        assert shift > 0.0
        recon = l_factor @ l_factor.T
        assert np.allclose(recon, s + shift * np.eye(6), atol=1e-8)
        kinds = events.counts()
        assert kinds.get("cholesky_jitter", 0) >= 1
        assert kinds.get("cholesky_recovered", 0) == 1

    def test_severely_indefinite_matrix_recovers(self):
        """The eigenvalue-informed first escalation must cover deficits far
        beyond what doubling from a tiny seed could reach."""
        s = _spd(4, seed=3) - 1e9 * np.eye(4)
        l_factor, shift = guarded_cholesky(s)
        assert np.isfinite(l_factor).all()
        assert shift > 1e8

    def test_nonfinite_input_sanitized_and_recorded(self):
        s = _spd(5, seed=4)
        s[1, 3] = np.nan
        s[3, 1] = np.inf
        events = EventLog()
        l_factor, _ = guarded_cholesky(s, events=events)
        assert np.isfinite(l_factor).all()
        assert len(events.of_kind("nonfinite_input")) == 1
        assert events.of_kind("nonfinite_input")[0].data["bad_entries"] == 2

    def test_gives_up_with_structured_error(self):
        """If the factorization keeps failing, the guard must raise a
        ResilienceError carrying the escalation history — not loop forever
        and not surface a bare LinAlgError."""

        def always_fails(_):
            raise np.linalg.LinAlgError("synthetic")

        events = EventLog()
        policy = ResiliencePolicy(max_jitter_attempts=3)
        with pytest.raises(ResilienceError) as exc_info:
            guarded_cholesky(_spd(4), policy=policy, events=events, chol=always_fails)
        err = exc_info.value
        assert len(err.events) == len(events)
        assert len(events.of_kind("cholesky_jitter")) == 4  # initial + 3 retries

    def test_escalation_doubles(self):
        attempts = []

        def capture(m):
            attempts.append(float(m[0, 0]))
            raise np.linalg.LinAlgError("synthetic")

        base = np.zeros((3, 3))
        with pytest.raises(ResilienceError):
            guarded_cholesky(
                base, policy=ResiliencePolicy(max_jitter_attempts=4), chol=capture
            )
        # attempt 0 has shift 0; later shifts double.
        shifts = attempts[1:]
        for a, b in zip(shifts, shifts[1:]):
            assert b == pytest.approx(2 * a)


class TestGuardedInverse:
    def test_inverse_of_indefinite_through_guard(self):
        s = _indefinite(5, seed=6)
        inv, shift = guarded_spd_inverse(s)
        assert np.allclose((s + shift * np.eye(5)) @ inv, np.eye(5), atol=1e-8)

    def test_clean_inverse_matches_plain(self):
        from repro.linalg.cholesky import spd_inverse

        s = _spd(6, seed=7)
        inv, shift = guarded_spd_inverse(s)
        assert shift == 0.0
        assert np.allclose(inv, spd_inverse(cholesky_factor(s)))


class TestSanitize:
    def test_no_copy_when_clean(self):
        a = np.ones((3, 3))
        out, n_bad = sanitize_nonfinite(a)
        assert n_bad == 0
        assert out is a

    def test_replaces_all_nonfinite(self):
        a = np.array([1.0, np.nan, np.inf, -np.inf, 2.0])
        out, n_bad = sanitize_nonfinite(a)
        assert n_bad == 3
        assert np.array_equal(out, [1.0, 0.0, 0.0, 0.0, 2.0])
        assert np.isnan(a[1])  # original untouched


class TestSentinels:
    def test_noop_without_context(self):
        bad = np.array([np.nan, 1.0])
        out = ensure_finite(bad, None, phase="UPDATE", what="x")
        assert out is bad

    def test_repair_zeroes_and_logs(self):
        ctx = ResilienceContext(ResiliencePolicy(sentinel="repair"))
        out = ensure_finite(
            np.array([np.nan, 2.0]), ctx, phase="UPDATE", what="factor", mode=1
        )
        assert np.array_equal(out, [0.0, 2.0])
        (event,) = list(ctx.events)
        assert event.kind == "sentinel_repair"
        assert event.mode == 1

    def test_raise_policy_raises_with_events(self):
        ctx = ResilienceContext(ResiliencePolicy(sentinel="raise"))
        with pytest.raises(ResilienceError) as exc_info:
            ensure_finite(np.array([np.inf]), ctx, phase="MTTKRP", what="M")
        assert exc_info.value.events  # the log travels with the error

    def test_warn_policy_passes_through(self):
        ctx = ResilienceContext(ResiliencePolicy(sentinel="warn"))
        bad = np.array([np.nan])
        out = ensure_finite(bad, ctx, phase="NORMALIZE", what="λ")
        assert out is bad
        assert len(ctx.events.of_kind("sentinel_warn")) == 1

    def test_finite_array_untouched_and_unlogged(self):
        ctx = ResilienceContext()
        a = np.ones(4)
        assert ensure_finite(a, ctx, phase="UPDATE", what="x") is a
        assert len(ctx.events) == 0


class TestPolicy:
    def test_resolve_shorthands(self):
        assert ResiliencePolicy.resolve(None).sentinel == "repair"
        assert ResiliencePolicy.resolve("raise").sentinel == "raise"
        assert ResiliencePolicy.resolve("off") is None
        p = ResiliencePolicy(max_admm_failures=7)
        assert ResiliencePolicy.resolve(p) is p

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="resilience"):
            ResiliencePolicy.resolve("explode")

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(sentinel="panic")
        with pytest.raises(ValueError):
            ResiliencePolicy(max_jitter_attempts=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(rho_rescale=1.0)
