"""Validation, RNG and timing utilities."""

import time

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    check_axis,
    check_positive_int,
    check_rank,
    check_same_length,
    check_shape,
    require,
)


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_positive_int_accepts_numpy_scalars(self):
        assert check_positive_int(np.int64(5), "x") == 5

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True, None])
    def test_positive_int_rejects(self, bad):
        with pytest.raises((TypeError, ValueError)):
            check_positive_int(bad, "x")

    def test_positive_int_accepts_integral_float(self):
        assert check_positive_int(4.0, "x") == 4

    def test_shape(self):
        assert check_shape([3, 4]) == (3, 4)
        with pytest.raises(ValueError):
            check_shape([3, 0])
        with pytest.raises(ValueError, match="at least"):
            check_shape([3], min_modes=2)

    def test_axis(self):
        assert check_axis(-1, 3) == 2
        assert check_axis(0, 3) == 0
        with pytest.raises(ValueError):
            check_axis(3, 3)
        with pytest.raises(TypeError):
            check_axis(True, 3)

    def test_rank(self):
        assert check_rank(8) == 8
        with pytest.raises(ValueError):
            check_rank(0)

    def test_same_length(self):
        check_same_length([1], [2], "pair")
        with pytest.raises(ValueError, match="pair"):
            check_same_length([1], [2, 3], "pair")


class TestRng:
    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_reproducible(self):
        assert as_generator(7).random() == as_generator(7).random()

    def test_none_works(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_independent(self):
        children = spawn_generators(3, count=4)
        draws = [g.random() for g in children]
        assert len(set(draws)) == 4

    def test_spawn_reproducible(self):
        a = [g.random() for g in spawn_generators(3, count=2)]
        b = [g.random() for g in spawn_generators(3, count=2)]
        assert a == b

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(1), count=2)
        assert len(children) == 2

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, count=-1)


class TestStopwatch:
    def test_lap_accumulates(self):
        sw = Stopwatch()
        with sw.lap("a"):
            time.sleep(0.001)
        with sw.lap("a"):
            pass
        assert sw.total("a") > 0
        assert sw.counts["a"] == 2

    def test_breakdown_sums_to_one(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.add("y", 3.0)
        assert sum(sw.breakdown().values()) == pytest.approx(1.0)
        assert sw.breakdown()["y"] == pytest.approx(0.75)

    def test_empty_breakdown(self):
        assert Stopwatch().breakdown() == {}

    def test_grand_total(self):
        sw = Stopwatch()
        sw.add("x", 1.5)
        sw.add("y", 0.5)
        assert sw.grand_total() == 2.0

    def test_mean_uses_counts(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.add("x", 3.0)
        sw.add("y", 0.5)
        assert sw.mean("x") == pytest.approx(2.0)
        assert sw.mean("y") == pytest.approx(0.5)
        assert sw.mean("never") == 0.0

    def test_breakdown_ordered_by_descending_time(self):
        sw = Stopwatch()
        sw.add("small", 1.0)
        sw.add("big", 5.0)
        sw.add("mid", 2.0)
        assert list(sw.breakdown()) == ["big", "mid", "small"]
        # Ties break by name, so the order is deterministic.
        sw2 = Stopwatch()
        sw2.add("b", 1.0)
        sw2.add("a", 1.0)
        assert list(sw2.breakdown()) == ["a", "b"]

    def test_report_table(self):
        sw = Stopwatch()
        sw.add("alpha", 1.0)
        sw.add("alpha", 1.0)
        sw.add("beta", 6.0)
        report = sw.report()
        lines = report.splitlines()
        # Header, rule, beta (heavier) before alpha, then the TOTAL row.
        assert "lap" in lines[0] and "share" in lines[0]
        assert lines[2].startswith("beta")
        assert lines[3].startswith("alpha")
        assert lines[-1].startswith("TOTAL")
        assert "75.0%" in lines[2]
        assert "8.000000" in lines[-1]  # grand total
        assert Stopwatch().report() == "(no laps recorded)"
