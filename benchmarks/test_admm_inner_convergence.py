"""Methodology check — "ADMM converges in approximately 10 iterations".

Section 5.1 fixes the inner-iteration count to 10 "since ADMM converges in
approximately 10 iterations for all practical purposes". This bench
reproduces that claim on realistic subproblems: across several random cSTF
mode subproblems, the primal and dual residual ratios fall below 1e-2
within ~10 inner iterations and keep decreasing.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.kernels.gram import gram_chain
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.machine.executor import Executor
from repro.tensor.synthetic import random_sparse
from repro.updates.admm import AdmmUpdate

from conftest import run_once


def _residual_curves(n_problems=5, inner_iters=20, rank=8):
    curves = []
    for seed in range(n_problems):
        tensor = random_sparse((60, 50, 40), nnz=4000, seed=seed)
        rng = np.random.default_rng(seed)
        factors = [rng.random((d, rank)) for d in tensor.shape]
        m_mat = mttkrp_coo(tensor, factors, 0)
        s_mat = gram_chain(factors, skip=0)
        update = AdmmUpdate(inner_iters=inner_iters, record_residuals=True)
        state = update.init_state(tensor.shape, rank)
        update.update(Executor("a100"), 0, m_mat, s_mat, factors[0], state)
        curves.append(state["residuals"])
    return curves


def test_admm_converges_in_about_ten_iterations(benchmark, emit):
    curves = run_once(benchmark, _residual_curves)

    mean_primal = np.mean([[p for p, _ in c] for c in curves], axis=0)
    rows = [
        [f"iter {i + 1}", f"{mean_primal[i]:.2e}"]
        for i in range(len(mean_primal))
    ]
    emit(
        format_table(
            ["inner iteration", "mean primal residual ratio"],
            rows,
            title='Section 5.1 check: "ADMM converges in ~10 iterations"',
        )
    )

    for curve in curves:
        primal = [p for p, _ in curve]
        # After an early transient (the dual variable warming up from zero),
        # the residual collapses: "approximately 10 iterations".
        assert primal[9] < 0.1
        assert primal[11] < 1e-2
        # Extra iterations keep helping but with sharply diminishing returns
        # — the paper's justification for fixing the count at 10.
        assert primal[19] < 0.1 * primal[9]
