"""Rank grid — Section 5.1's full R ∈ {16, 32, 64} evaluation.

The paper ran every configuration at three ranks; this bench regenerates
the end-to-end speedup summary per rank and verifies the roofline
mechanism: higher rank → higher ADMM arithmetic intensity → the GPU's
advantage holds (and per-iteration times grow) across the grid.
"""

from repro.analysis.reporting import format_table
from repro.experiments.rank_study import rank_study

from conftest import run_once


def test_rank_study_a100(benchmark, emit):
    rows = run_once(benchmark, rank_study, device="a100")

    emit(
        format_table(
            ["rank", "ADMM AI (flop/byte)", "gmean speedup", "min", "max"],
            [
                [
                    r.rank,
                    f"{r.arithmetic_intensity:.3f}",
                    f"{r.gmean:.2f}x",
                    f"{r.series.min_speedup:.2f}x",
                    f"{r.series.max_speedup:.2f}x",
                ]
                for r in rows
            ],
            title="Rank study: GPU vs SPLATT across the paper's rank grid (A100)",
        )
    )

    assert [r.rank for r in rows] == [16, 32, 64]
    # Eq. 5: AI grows with rank.
    ais = [r.arithmetic_intensity for r in rows]
    assert ais == sorted(ais)
    # The GPU wins decisively at every rank in the grid.
    for r in rows:
        assert r.gmean > 3.0, f"rank {r.rank}"
        assert r.series.min_speedup > 1.0, f"rank {r.rank}"
