"""Ablation — blocked AO-ADMM (Smith et al.) and baseline sensitivity.

Two questions the paper's related work raises:

1. How much does the blockwise reformulation help the *CPU* baseline?
   (It is SPLATT's own optimization — ICPP '17.)
2. Does cuADMM still beat a blocked-ADMM CPU baseline? (Figure 5/6's
   conclusion must be robust to strengthening the baseline.)
"""

from repro.analysis.reporting import format_table
from repro.analysis.speedup import geometric_mean
from repro.core.config import CstfConfig
from repro.core.cstf import cstf
from repro.data.frostt import FROSTT_TABLE2
from repro.updates.admm import AdmmUpdate
from repro.updates.blocked_admm import BlockedAdmmUpdate

from conftest import run_once


def _cpu_time(stats, update):
    res = cstf(
        stats,
        CstfConfig(rank=32, max_iters=1, update=update, device="cpu",
                   mttkrp_format="csf", compute_fit=False),
    )
    return res.per_iteration_seconds()


def _gpu_time(stats):
    res = cstf(
        stats,
        CstfConfig(rank=32, max_iters=1, update="cuadmm", device="a100",
                   mttkrp_format="blco", compute_fit=False),
    )
    return res.per_iteration_seconds()


def _study():
    rows = []
    for ds in FROSTT_TABLE2:
        stats = ds.stats()
        generic = _cpu_time(stats, AdmmUpdate(inner_iters=10))
        blocked = _cpu_time(stats, BlockedAdmmUpdate(inner_iters=10))
        gpu = _gpu_time(stats)
        rows.append((ds.name, generic, blocked, gpu))
    return rows


def test_blocked_admm_baseline_sensitivity(benchmark, emit):
    rows = run_once(benchmark, _study)

    emit(
        format_table(
            ["tensor", "CPU generic", "CPU blocked", "block gain", "GPU vs blocked"],
            [
                [name, f"{g:.3e}", f"{b:.3e}", f"{g / b:.2f}x", f"{b / gpu:.2f}x"]
                for name, g, b, gpu in rows
            ],
            title="Ablation: blocked AO-ADMM CPU baseline (R=32)",
        )
    )

    block_gains = [g / b for _, g, b, _ in rows]
    gpu_vs_blocked = [b / gpu for _, _, b, gpu in rows]
    # Blocking helps the CPU on every tensor (the Smith et al. result)...
    assert all(x > 1.0 for x in block_gains)
    # ...materially on the large-factor tensors...
    assert max(block_gains) > 1.5
    # ...but the GPU framework still wins overall even against the
    # strengthened baseline (robustness of the paper's conclusion).
    assert geometric_mean(gpu_vs_blocked) > 2.0
