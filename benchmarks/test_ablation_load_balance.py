"""Ablation — MTTKRP load balance under skewed fiber histograms.

FROSTT-like tensors have heavy-tailed fiber histograms, so the partitioning
strategy a parallel MTTKRP uses matters: equal-nnz streaming (BLCO) is
perfectly balanced but needs atomics; static owner-computes row ranges
(naive SPLATT) skew badly; greedy fiber assignment (LPT) restores balance
without conflicts. This bench quantifies all three on a scaled Delicious
analogue across worker counts.
"""

from repro.analysis.reporting import format_table
from repro.data.frostt import get_dataset
from repro.kernels.partition import (
    partition_by_output_row,
    partition_equal_nnz,
    partition_greedy_fibers,
)

from conftest import run_once

WORKERS = (8, 26, 108)  # a CPU socket, the paper's Xeon, an A100's SMs


def _study():
    tensor = get_dataset("delicious").load_scaled(seed=2, max_dim=1500, target_nnz=40_000)
    rows = []
    for n in WORKERS:
        eq = partition_equal_nnz(tensor, n)
        rowrange = partition_by_output_row(tensor, 0, n)
        greedy = partition_greedy_fibers(tensor, 0, n)
        rows.append((n, eq.imbalance(), rowrange.imbalance(), greedy.imbalance()))
    return rows


def test_load_balance_strategies(benchmark, emit):
    rows = run_once(benchmark, _study)

    emit(
        format_table(
            ["workers", "equal-nnz (atomics)", "row ranges", "greedy fibers"],
            [[n, f"{a:.2f}", f"{b:.2f}", f"{c:.2f}"] for n, a, b, c in rows],
            title="Ablation: MTTKRP load imbalance (max/mean) on scaled Delicious",
        )
    )

    for n, eq, rowrange, greedy in rows:
        # Equal-nnz is balanced by construction.
        assert eq < 1.05, n
        # Greedy fiber assignment beats static row ranges.
        assert greedy <= rowrange + 1e-9, n
    # Imbalance of static ranges grows with worker count (fewer rows per
    # range → a single hot fiber dominates).
    static = [r[2] for r in rows]
    assert static[-1] > static[0]
