"""Ablation — memory residency and out-of-core MTTKRP (the BLCO premise).

The BLCO paper the framework builds on is an *out-of-memory* MTTKRP design.
This bench reports the Table 2 tensors' device-memory footprints at the
paper's ranks and sweeps the device capacity on Amazon (the 1.7 B-nonzero
tensor) to find where streaming stops hiding behind compute.
"""

from repro.analysis.reporting import format_table
from repro.data.frostt import FROSTT_TABLE2, get_dataset
from repro.machine.executor import Executor
from repro.machine.memory import charge_out_of_core_mttkrp, footprint

from conftest import run_once


def _study():
    rows = []
    for ds in FROSTT_TABLE2:
        fp = footprint(ds.stats(), 64)
        rows.append((ds.name, fp.tensor / 1e9, fp.factors / 1e9, fp.utilization))

    stats = get_dataset("amazon").stats()
    sweep = []
    for capacity in (80e9, 40e9, 24e9, 16e9):
        ex = Executor("a100")
        seconds = charge_out_of_core_mttkrp(
            ex, stats, 16, 0, capacity=capacity, pcie_bandwidth=25e9
        )
        streamed = "mttkrp_host_stream" in ex.timeline.kernel_seconds
        sweep.append((capacity / 1e9, seconds, streamed))
    return rows, sweep


def test_memory_footprints_and_out_of_core(benchmark, emit):
    rows, sweep = run_once(benchmark, _study)

    emit(
        format_table(
            ["tensor", "tensor GB", "factors GB (R=64)", "of 80 GB"],
            [[n, f"{t:.2f}", f"{f:.2f}", f"{100 * u:.1f}%"] for n, t, f, u in rows],
            title="Ablation: device-memory footprints (BLCO, R=64)",
        )
    )
    emit(
        format_table(
            ["capacity GB", "MTTKRP s (R=16)", "host streaming?"],
            [[f"{c:.0f}", f"{s:.3f}", "yes" if st else "hidden/none"] for c, s, st in sweep],
            title="Ablation: Amazon MTTKRP vs device capacity",
        )
    )

    # Every paper tensor is resident at 80 GB (they ran on these GPUs).
    assert all(u < 1.0 for _, _, _, u in rows)
    # Amazon is the biggest footprint.
    assert max(rows, key=lambda r: r[1])[0] == "amazon"
    # Shrinking capacity eventually exposes streaming, and never speeds up.
    times = [s for _, s, _ in sweep]
    assert times == sorted(times)
    assert sweep[-1][2] is True
