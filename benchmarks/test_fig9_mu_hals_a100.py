"""Figure 9 — MU and HALS speedups over modified PLANC, A100.

Paper setup: the GPU framework running the MU and HALS nonnegativity
updates vs the ALTO-based modified-PLANC CPU library, per-iteration,
R = 32, across the 10 tensors.
Paper result: geometric means 6.42× (MU) and 5.90× (HALS) — of the same
order as the ADMM-based speedups, demonstrating the framework's
flexibility across update schemes.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig9_10_mu_hals_speedup

from conftest import run_once


def test_fig9_mu_hals_a100(benchmark, emit):
    results = run_once(benchmark, fig9_10_mu_hals_speedup, device="a100", rank=32)

    for method, paper_gmean in (("mu", 6.42), ("hals", 5.90)):
        series = results[method]
        emit(
            format_table(
                ["tensor", "PLANC (CPU) s/iter", "cSTF-GPU s/iter", "speedup"],
                series.as_rows(),
                title=f"Figure 9 ({method.upper()}): GPU vs PLANC, A100, R=32   [paper gmean {paper_gmean}x]",
            )
        )

    for method in ("mu", "hals"):
        series = results[method]
        assert series.gmean > 2.0, method
        wins = sum(1 for s in series.speedups if s > 1.0)
        assert wins >= 8, f"{method}: GPU should win on nearly all tensors"
    # Same order as the ADMM speedups (paper's flexibility claim).
    assert 1.0 < results["mu"].gmean < 30.0
    assert 1.0 < results["hals"].gmean < 30.0
