"""Companion study — fit quality vs. simulated time across update methods.

Extends the paper's per-iteration speed comparison (Figures 5–10) with the
quality axis: how much simulated GPU time each update scheme needs to reach
a given fit on a shared planted problem.
"""

from repro.analysis.reporting import format_table
from repro.experiments.convergence import convergence_study

from conftest import run_once

TARGET_FIT = 0.9


def test_convergence_quality(benchmark, emit):
    curves = run_once(benchmark, convergence_study)

    rows = []
    for name, curve in curves.items():
        ttf = curve.time_to_fit(TARGET_FIT)
        rows.append(
            [
                name,
                f"{curve.final_fit:.3f}",
                f"{curve.seconds_per_iteration * 1e3:.3f} ms",
                "-" if ttf is None else f"{ttf * 1e3:.2f} ms",
            ]
        )
    emit(
        format_table(
            ["update", "final fit", "sim s/iter", f"time to fit {TARGET_FIT}"],
            rows,
            title="Quality study: fit vs simulated A100 time (planted rank-4 problem)",
        )
    )

    # Every method makes real progress on the planted problem.
    for name, curve in curves.items():
        assert curve.final_fit > 0.8, name
    # cuADMM iterates are identical to ADMM's but cost less per iteration —
    # so its time-to-fit must be strictly better.
    admm_ttf = curves["admm"].time_to_fit(TARGET_FIT)
    cu_ttf = curves["cuadmm"].time_to_fit(TARGET_FIT)
    assert cu_ttf is not None and admm_ttf is not None
    assert cu_ttf < admm_ttf
    # Same iterates up to floating-point re-association in the fused kernels.
    import math

    for a, b in zip(curves["cuadmm"].fits, curves["admm"].fits):
        assert math.isclose(a, b, rel_tol=1e-7, abs_tol=1e-6)
    # MU needs more iterations than ADMM-class methods for the same fit.
    mu_iters = next(
        (i for i, f in enumerate(curves["mu"].fits) if f >= TARGET_FIT),
        len(curves["mu"].fits) + 1,
    )
    admm_iters = next(i for i, f in enumerate(curves["admm"].fits) if f >= TARGET_FIT)
    assert mu_iters > admm_iters
