"""Ablation — multi-GPU strong scaling (Section 7 future work, implemented).

Strong-scaling curves (1/2/4/8 A100s over NVLink) for a small, a medium,
and two large tensors. Expected picture: communication latency caps the
small tensors while the large ones approach linear scaling — quantifying
when the paper's planned multi-GPU extension would pay off.
"""

from repro.analysis.reporting import format_table
from repro.data.frostt import get_dataset
from repro.machine.multigpu import MultiGpuModel

from conftest import run_once

COUNTS = (1, 2, 4, 8)
TENSORS = ("uber", "nell2", "delicious", "amazon")


def _curves():
    model = MultiGpuModel("a100")
    out = {}
    for name in TENSORS:
        stats = get_dataset(name).stats()
        curve = model.scaling_curve(stats, 32, counts=COUNTS)
        out[name] = {n: (est.total, est.communication_seconds) for n, est in curve.items()}
    return out


def test_multigpu_strong_scaling(benchmark, emit):
    curves = run_once(benchmark, _curves)

    rows = []
    for name, curve in curves.items():
        base = curve[1][0]
        rows.append(
            [name]
            + [f"{base / curve[n][0]:.2f}x ({curve[n][1] * 1e3:.1f}ms comm)" for n in COUNTS]
        )
    emit(
        format_table(
            ["tensor"] + [f"{n} GPU" for n in COUNTS],
            rows,
            title="Ablation: multi-GPU strong scaling (A100 + NVLink, R=32)",
        )
    )

    # Large tensors scale; small ones are latency-bound.
    for name in ("delicious", "amazon"):
        assert curves[name][1][0] / curves[name][8][0] > 5.0, name
    assert curves["uber"][1][0] / curves["uber"][8][0] < 2.0
    # Communication never exceeds compute for the large tensors at 8 GPUs.
    for name in ("delicious", "amazon"):
        total, comm = curves[name][8]
        assert comm < 0.5 * total, name
