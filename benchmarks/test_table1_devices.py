"""Table 1 — hardware and software setup.

Prints the modeled device roster and asserts the Table 1 facts the cost
model depends on: equal HBM bandwidth across the GPUs, the H100's larger
caches, and the CPU's much lower bandwidth.
"""

from repro.analysis.reporting import format_table
from repro.machine.spec import A100, H100, ICELAKE_XEON

from conftest import run_once


def _roster():
    return [A100, H100, ICELAKE_XEON]


def test_table1_device_roster(benchmark, emit):
    devices = run_once(benchmark, _roster)
    rows = [
        [
            d.name,
            d.kind,
            f"{d.peak_flops / 1e12:.1f} TF/s",
            f"{d.mem_bandwidth / 1e9:.0f} GB/s",
            f"{d.cache_bytes / 1e6:.1f} MB",
        ]
        for d in devices
    ]
    emit(
        format_table(
            ["device", "kind", "fp64 peak", "bandwidth", "cache"],
            rows,
            title="Table 1: modeled hardware",
        )
    )

    a100, h100, cpu = devices
    assert a100.mem_bandwidth == h100.mem_bandwidth == 2039e9
    assert h100.cache_bytes == (28.5 + 50.0) * 1e6
    assert a100.cache_bytes == (20.3 + 40.0) * 1e6
    assert cpu.mem_bandwidth < a100.mem_bandwidth / 5
