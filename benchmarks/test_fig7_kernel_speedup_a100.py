"""Figure 7 — MTTKRP speedup vs ADMM speedup per tensor, A100.

Paper setup: for each tensor, the GPU/CPU speedup of the MTTKRP phase
(BLCO vs CSF) plotted against the speedup of the update phase (cuADMM vs
ADMM), R = 32.
Paper result: the two speedups are approximately inversely related — long
modes mean more ADMM parallelism but sparser, reuse-poor MTTKRP; short
modes the opposite — with VAST the lone exception (its length-2 mode makes
the GPU MTTKRP slower via atomic contention while its ADMM gain stays
high).
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig7_8_kernel_speedups

from conftest import run_once

SHORT_MODE = ("nips", "uber", "chicago")
LONG_MODE = ("flickr", "delicious", "nell1", "amazon")


def test_fig7_kernel_speedups_a100(benchmark, emit):
    rows = run_once(benchmark, fig7_8_kernel_speedups, device="a100", rank=32)

    table = [
        [r.dataset, f"{r.mttkrp_speedup:.2f}x", f"{r.admm_speedup:.2f}x"]
        for r in rows
    ]
    emit(
        format_table(
            ["tensor", "MTTKRP speedup", "ADMM speedup"],
            table,
            title="Figure 7: per-kernel GPU/CPU speedups (A100, R=32)",
        )
    )

    by_name = {r.dataset: r for r in rows}
    # Short-mode tensors: MTTKRP gains exceed ADMM gains.
    for name in SHORT_MODE:
        assert by_name[name].mttkrp_speedup > by_name[name].admm_speedup, name
    # Long-mode tensors: massive ADMM gains.
    for name in LONG_MODE:
        assert by_name[name].admm_speedup > 10.0, name
    # VAST is the exception the paper calls out.
    assert by_name["vast"].mttkrp_speedup < 1.0
    assert by_name["vast"].admm_speedup > 5.0
