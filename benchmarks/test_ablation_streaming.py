"""Ablation — streaming ingest vs batch refit (the [33] extension).

Measures the simulated cost of one streaming ingest step against refitting
the accumulated tensor from scratch with the batch driver, as the stream
grows. The streaming advantage should widen with the horizon (refit cost
grows with T, ingest cost stays flat).
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.core import cstf
from repro.streaming import StreamingCstf
from repro.tensor.coo import SparseTensor

from conftest import run_once

SPATIAL = (60, 45)
RANK = 4


def _slabs(steps, seed=11):
    rng = np.random.default_rng(seed)
    a = rng.exponential(size=(SPATIAL[0], RANK))
    b = rng.exponential(size=(SPATIAL[1], RANK))
    out = []
    for _ in range(steps):
        w = np.abs(rng.normal(size=RANK)) + 0.1
        out.append(SparseTensor.from_dense(np.einsum("ir,jr,r->ij", a, b, w)))
    return out


def _accumulate(slabs):
    idx, vals = [], []
    for t, slab in enumerate(slabs):
        idx.append(np.column_stack([slab.indices, np.full(slab.nnz, t, dtype=np.int64)]))
        vals.append(slab.values)
    return SparseTensor(np.vstack(idx), np.concatenate(vals), SPATIAL + (len(slabs),))


def _compare():
    horizons = (10, 20, 40)
    slabs = _slabs(max(horizons))
    stream = StreamingCstf(SPATIAL, rank=RANK, seed=1)
    per_step = {}
    for t, slab in enumerate(slabs, start=1):
        step = stream.ingest(slab)
        if t in horizons:
            per_step[t] = step.seconds
    rows = []
    for t in horizons:
        refit = cstf(
            _accumulate(slabs[:t]), rank=RANK, update="cuadmm", max_iters=10,
            compute_fit=False,
        )
        rows.append((t, per_step[t], refit.timeline.total_seconds()))
    return rows


def test_streaming_vs_refit(benchmark, emit):
    rows = run_once(benchmark, _compare)

    emit(
        format_table(
            ["horizon T", "ingest step (s)", "batch refit (s)", "advantage"],
            [[t, f"{s:.3e}", f"{r:.3e}", f"{r / s:.1f}x"] for t, s, r in rows],
            title="Ablation: streaming ingest vs batch refit (simulated A100)",
        )
    )

    for t, step_s, refit_s in rows:
        assert step_s < refit_s, f"T={t}"
    # The advantage widens with the horizon.
    advantages = [r / s for _, s, r in rows]
    assert advantages == sorted(advantages)
    assert advantages[-1] > 5.0
