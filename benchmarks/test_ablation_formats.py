"""Ablation — sparse-format comparison (the Section 2.3 design space).

Compares the five implemented formats on a scaled Delicious analogue:
index-storage footprint, host MTTKRP wall time, and simulated device cost
(each on its natural device). Also sweeps BLCO's bit budget to show the
compression/blocking trade-off the format is built around.
"""

import time

import numpy as np

from repro.analysis.reporting import format_table
from repro.data.frostt import get_dataset
from repro.kernels.mttkrp_alto import mttkrp_alto
from repro.kernels.mttkrp_blco import mttkrp_blco
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.kernels.mttkrp_hicoo import mttkrp_hicoo
from repro.machine.analytic import TensorStats, charge_mttkrp
from repro.machine.executor import Executor
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.csf import CsfTensor
from repro.tensor.hicoo import HicooTensor

from conftest import run_once

RANK = 32


def _index_bytes(fmt_obj, tensor):
    if isinstance(fmt_obj, AltoTensor):
        return fmt_obj.linear_indices.nbytes
    if isinstance(fmt_obj, BlcoTensor):
        return sum(b.linear.nbytes + b.high.nbytes for b in fmt_obj.blocks)
    if isinstance(fmt_obj, CsfTensor):
        return sum(f.nbytes for f in fmt_obj.fids) + sum(p.nbytes for p in fmt_obj.fptr)
    if isinstance(fmt_obj, HicooTensor):
        return fmt_obj.index_storage_bytes()
    return tensor.indices.nbytes  # raw COO


def _compare():
    tensor = get_dataset("delicious").load_scaled(seed=0, max_dim=1200, target_nnz=30_000)
    rng = np.random.default_rng(0)
    factors = [rng.random((d, RANK)) for d in tensor.shape]
    stats = TensorStats.from_coo(tensor)

    formats = {
        "coo": (tensor, mttkrp_coo, "cpu"),
        "alto": (AltoTensor.from_coo(tensor), mttkrp_alto, "cpu"),
        "csf": (CsfTensor.from_coo(tensor, root_mode=0), mttkrp_csf, "cpu"),
        "blco": (BlcoTensor.from_coo(tensor), mttkrp_blco, "a100"),
        "hicoo": (HicooTensor.from_coo(tensor, block_bits=4), mttkrp_hicoo, "cpu"),
    }

    reference = mttkrp_coo(tensor, factors, 0)
    rows = {}
    for name, (obj, kernel, device) in formats.items():
        t0 = time.perf_counter()
        out = kernel(obj, factors, 0)
        wall = time.perf_counter() - t0
        assert np.allclose(out, reference), name
        if name in ("coo", "alto", "csf", "blco"):
            ex = Executor(device)
            sim = charge_mttkrp(ex, stats, RANK, 0, name)
        else:
            sim = float("nan")
        rows[name] = (_index_bytes(obj, tensor), wall, sim, device)
    return tensor, rows


def test_format_comparison(benchmark, emit):
    tensor, rows = run_once(benchmark, _compare)

    table = [
        [
            name,
            f"{idx_bytes / 1024:.1f} KiB",
            f"{wall * 1e3:.2f} ms",
            ("-" if sim != sim else f"{sim * 1e6:.1f} µs ({device})"),
        ]
        for name, (idx_bytes, wall, sim, device) in rows.items()
    ]
    emit(
        format_table(
            ["format", "index storage", "host MTTKRP", "simulated MTTKRP"],
            table,
            title=f"Ablation: format comparison on scaled Delicious ({tensor.nnz} nnz, R={RANK})",
        )
    )

    # Linearized formats compress the index stream vs raw COO.
    assert rows["alto"][0] < rows["coo"][0]
    assert rows["blco"][0] < rows["coo"][0]
    # All kernels agreed with the COO reference (asserted inside _compare).


def test_blco_bit_budget_sweep(benchmark, emit):
    def sweep():
        tensor = get_dataset("nell2").load_scaled(seed=1, max_dim=1024, target_nnz=20_000)
        out = []
        for budget in (12, 18, 24, 48):
            blco = BlcoTensor.from_coo(tensor, bit_budget=budget)
            out.append((budget, blco.num_blocks, sum(blco.low_widths)))
        return out

    rows = run_once(benchmark, sweep)
    emit(
        format_table(
            ["bit budget", "blocks", "in-block bits"],
            [[b, n, w] for b, n, w in rows],
            title="Ablation: BLCO bit-budget vs block count (scaled NELL2)",
        )
    )
    blocks = [n for _, n, _ in rows]
    # Tighter budgets force more blocks; a loose budget collapses to one.
    assert blocks == sorted(blocks, reverse=True)
    assert blocks[-1] == 1
