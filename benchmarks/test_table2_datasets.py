"""Table 2 — the sparse tensor datasets, ordered by nonzero count.

Prints the registry with dims/nnz/density exactly as the paper tabulates
them and asserts the published values.
"""

import pytest

from repro.analysis.reporting import format_table
from repro.experiments.figures import table2_datasets

from conftest import run_once


def test_table2_datasets(benchmark, emit):
    rows = run_once(benchmark, table2_datasets)
    table = [
        [
            r["name"],
            " x ".join(f"{d:,}" for d in r["dims"]),
            f"{r['nnz']:,}",
            f"{r['density']:.1e}",
            r["group"],
        ]
        for r in rows
    ]
    emit(
        format_table(
            ["tensor", "dimensions", "NNZs", "density", "group"],
            table,
            title="Table 2: evaluation datasets (FROSTT)",
        )
    )

    assert [r["name"] for r in rows] == [
        "nips", "uber", "chicago", "vast", "enron",
        "nell2", "flickr", "delicious", "nell1", "amazon",
    ]
    nnzs = [r["nnz"] for r in rows]
    assert nnzs == sorted(nnzs), "Table 2 orders by nonzero count"
    by_name = {r["name"]: r for r in rows}
    assert by_name["delicious"]["density"] == pytest.approx(4.3e-15, rel=0.1)
    assert by_name["amazon"]["nnz"] == pytest.approx(1.7e9, rel=0.03)
