"""Companion study — the cost of constraints (the paper's Section 1 claim).

Quantifies how much slower constrained factorization is than unconstrained
CP-ALS per iteration, and how much of that overhead cuADMM claws back.
"""

from repro.analysis.reporting import format_table
from repro.experiments.constraint_cost import constraint_cost_study

from conftest import run_once


def test_constraint_cost(benchmark, emit):
    rows = run_once(benchmark, constraint_cost_study, device="h100", rank=32)

    emit(
        format_table(
            ["tensor", "ALS s/iter", "ADMM s/iter", "cuADMM s/iter",
             "ADMM overhead", "cuADMM overhead", "recovered"],
            [
                [
                    r.dataset,
                    f"{r.als_seconds:.3e}",
                    f"{r.admm_seconds:.3e}",
                    f"{r.cuadmm_seconds:.3e}",
                    f"{r.admm_overhead:.2f}x",
                    f"{r.cuadmm_overhead:.2f}x",
                    f"{100 * r.optimization_recovery:.0f}%",
                ]
                for r in rows
            ],
            title="Cost of constraints: unconstrained ALS vs ADMM vs cuADMM (H100, R=32)",
        )
    )

    by_name = {r.dataset: r for r in rows}
    for r in rows:
        # Constraints always cost something, and cuADMM always claws a
        # meaningful share of that overhead back.
        assert r.admm_overhead > 1.05, r.dataset
        assert r.cuadmm_seconds < r.admm_seconds, r.dataset
        assert r.optimization_recovery > 0.1, r.dataset
    # Where the update phase dominates (small nnz per factor row), the
    # constraint overhead is severe — several-fold.
    for name in ("nips", "enron", "delicious"):
        assert by_name[name].admm_overhead > 2.0, name
    # Amazon is MTTKRP-bound (1.7 B nonzeros against 8.4 M factor rows), so
    # its constraint overhead is small — the same structural effect that
    # made the dense case of Figure 1 MTTKRP-bound.
    assert by_name["amazon"].admm_overhead < by_name["nips"].admm_overhead
