"""Figure 5 — end-to-end per-iteration speedup vs SPLATT, A100, R = 32.

Paper setup: 10 FROSTT tensors, per-iteration cSTF time (GRAM + MTTKRP +
ADMM update + normalize), GPU framework (BLCO + cuADMM) vs CPU SPLATT
(CSF + ADMM), 10 ADMM inner iterations.
Paper result: geometric mean 5.10×, range 1.47–41.59×, biggest wins on the
long-mode tensors.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig5_6_end_to_end_speedup

from conftest import run_once

SMALL = ("nips", "uber", "chicago")
LARGE = ("flickr", "delicious", "nell1", "amazon")


def test_fig5_end_to_end_speedup_a100(benchmark, emit):
    series = run_once(benchmark, fig5_6_end_to_end_speedup, device="a100", rank=32)

    emit(
        format_table(
            ["tensor", "SPLATT (CPU) s/iter", "cSTF-GPU s/iter", "speedup"],
            series.as_rows(),
            title="Figure 5: end-to-end speedup vs SPLATT (A100, R=32)   [paper: gmean 5.10x, max 41.59x]",
        )
    )

    by_name = dict(zip(series.labels, series.speedups))
    assert series.gmean > 3.0, "GPU must win decisively overall"
    assert series.min_speedup > 1.0, "GPU wins on every tensor"
    assert max(by_name[k] for k in SMALL) < min(by_name[k] for k in LARGE), (
        "long-mode tensors benefit most from GPU offload"
    )
    assert 2.0 < series.gmean < 20.0, "same decade as the paper's 5.10x"
