"""Host wall-time microbenchmarks of the actual NumPy kernels.

Unlike the figure benches (which report *simulated* device time), these
time the real vectorized kernels on a scaled Delicious analogue — useful
for regression-tracking the host implementations themselves with
pytest-benchmark's statistics.
"""

import numpy as np
import pytest

from repro.data.frostt import get_dataset
from repro.kernels.mttkrp_alto import mttkrp_alto
from repro.kernels.mttkrp_blco import mttkrp_blco
from repro.kernels.mttkrp_coo import mttkrp_coo
from repro.kernels.mttkrp_csf import mttkrp_csf
from repro.tensor.alto import AltoTensor
from repro.tensor.blco import BlcoTensor
from repro.tensor.csf import CsfTensor
from repro.updates.admm import AdmmUpdate, cuadmm


@pytest.fixture(scope="module")
def workload():
    tensor = get_dataset("delicious").load_scaled(seed=0, max_dim=1500, target_nnz=40_000)
    rng = np.random.default_rng(0)
    factors = [rng.random((d, 32)) for d in tensor.shape]
    return tensor, factors


def test_mttkrp_coo_walltime(benchmark, workload):
    tensor, factors = workload
    out = benchmark(mttkrp_coo, tensor, factors, 0)
    assert out.shape == (tensor.shape[0], 32)


def test_mttkrp_alto_walltime(benchmark, workload):
    tensor, factors = workload
    alto = AltoTensor.from_coo(tensor)
    out = benchmark(mttkrp_alto, alto, factors, 0)
    assert np.allclose(out, mttkrp_coo(tensor, factors, 0))


def test_mttkrp_blco_walltime(benchmark, workload):
    tensor, factors = workload
    blco = BlcoTensor.from_coo(tensor)
    out = benchmark(mttkrp_blco, blco, factors, 0)
    assert np.allclose(out, mttkrp_coo(tensor, factors, 0))


def test_mttkrp_csf_walltime(benchmark, workload):
    tensor, factors = workload
    csf = CsfTensor.from_coo(tensor, root_mode=0)
    out = benchmark(mttkrp_csf, csf, factors, 0)
    assert np.allclose(out, mttkrp_coo(tensor, factors, 0))


def test_blco_construction_walltime(benchmark, workload):
    tensor, _ = workload
    blco = benchmark(BlcoTensor.from_coo, tensor)
    assert blco.nnz == tensor.nnz


def test_csf_construction_walltime(benchmark, workload):
    tensor, _ = workload
    csf = benchmark(CsfTensor.from_coo, tensor, 0)
    assert csf.nnz == tensor.nnz


@pytest.mark.parametrize("factory", [AdmmUpdate, cuadmm], ids=["admm", "cuadmm"])
def test_admm_update_walltime(benchmark, workload, factory):
    from repro.kernels.gram import gram_chain
    from repro.machine.executor import Executor

    tensor, factors = workload
    m_mat = mttkrp_coo(tensor, factors, 0)
    s_mat = gram_chain(factors, skip=0)
    update = factory(inner_iters=10)

    def run():
        state = update.init_state(tensor.shape, 32)
        return update.update(Executor("a100"), 0, m_mat, s_mat, factors[0], state)

    out = benchmark(run)
    assert (out >= 0).all()
