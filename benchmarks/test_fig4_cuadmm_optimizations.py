"""Figure 4 — cuADMM speedup over baseline GPU ADMM, per mode.

Paper setup: one ADMM iteration, R = 32, H100; datasets NIPS (small),
Enron (medium), Flickr/Delicious/Amazon (large); bars for operation fusion
(OF), pre-inversion (PI), and both.
Paper result: speedup correlates with factor-matrix size — ≈1.0–1.3× for
the small/medium group, up to ≈1.8× for the large group; PI contributes
more than OF where the solve matters; OF+PI is the best configuration.
"""

from repro.analysis.reporting import format_table
from repro.analysis.speedup import geometric_mean
from repro.experiments.figures import fig4_cuadmm_optimizations

from conftest import run_once


def test_fig4_cuadmm_optimizations(benchmark, emit):
    rows = run_once(benchmark, fig4_cuadmm_optimizations, rank=32, device="h100", inner_iters=1)

    table = [
        [
            r.dataset,
            f"mode {r.mode}",
            f"{r.rows:,}",
            f"{r.speedup_of:.2f}x",
            f"{r.speedup_pi:.2f}x",
            f"{r.speedup_both:.2f}x",
        ]
        for r in rows
    ]
    emit(
        format_table(
            ["tensor", "mode", "rows", "OF", "PI", "OF+PI"],
            table,
            title="Figure 4: cuADMM optimization speedups (H100, R=32, 1 ADMM iter)",
        )
    )

    # Shape targets.
    for r in rows:
        assert r.speedup_both >= 0.95 * max(r.speedup_of, r.speedup_pi), r

    small = [r.speedup_both for r in rows if r.rows < 20_000]
    large = [r.speedup_both for r in rows if r.rows > 1_000_000]
    assert max(small) < 1.5, "small factor matrices: little to no speedup"
    assert min(large) > max(small), "speedup correlates with factor size"
    assert max(large) < 3.0, "gains stay in the paper's regime (≈1.8x)"
    # PI > OF wherever the triangular solve is the bottleneck (large modes).
    for r in rows:
        if r.rows > 1_000_000:
            assert r.speedup_pi > r.speedup_of, r
    emit(f"large-group geometric mean (OF+PI): {geometric_mean(large):.2f}x")
