"""Ablation — the CPU/GPU/heterogeneous decision model (Section 7 future
work, implemented here).

For every Table 2 tensor, print the predicted per-iteration time of each
strategy and the planner's choice. The expected picture: the GPU wins
everywhere except VAST, whose length-2 mode poisons the GPU MTTKRP with
atomic contention — there the planner routes MTTKRP to the CPU and keeps
the update on the GPU, beating both pure strategies.
"""

from repro.analysis.reporting import format_table
from repro.data.frostt import FROSTT_TABLE2
from repro.scheduler.decision import plan_execution

from conftest import run_once


def _plan_all():
    return {ds.name: plan_execution(ds.stats(), rank=32) for ds in FROSTT_TABLE2}


def test_scheduler_decisions(benchmark, emit):
    plans = run_once(benchmark, _plan_all)

    rows = [
        [
            name,
            f"{p.alternatives['cpu'] * 1e3:.1f} ms",
            f"{p.alternatives['gpu'] * 1e3:.1f} ms",
            f"{min(p.alternatives['het:mttkrp=cpu'], p.alternatives['het:update=cpu']) * 1e3:.1f} ms",
            p.strategy,
            f"{p.advantage():.2f}x",
        ]
        for name, p in plans.items()
    ]
    emit(
        format_table(
            ["tensor", "cpu", "gpu", "best hybrid", "chosen", "vs best pure"],
            rows,
            title="Ablation: execution-strategy decision model (A100 + Ice Lake, R=32)",
        )
    )

    # The GPU is the right default at scale (the paper's thesis)...
    for name in ("flickr", "delicious", "nell1", "amazon", "enron", "nell2"):
        assert plans[name].strategy == "gpu", name
    # ...and the planner finds the one tensor where heterogeneity pays.
    assert plans["vast"].strategy == "het:mttkrp=cpu"
    assert plans["vast"].advantage() > 1.2
    # The planner never loses to a pure strategy.
    for name, p in plans.items():
        assert p.advantage() >= 1.0 - 1e-12, name
