"""Figure 3 — cSTF phase breakdown on the three largest tensors.

Paper setup: the modified-PLANC CPU implementation, ADMM, R = 32, on
Flickr, Delicious and NELL1 (the three largest nonzero counts below
Amazon's memory limit).
Paper result: the ADMM UPDATE phase dominates on all three.
"""

from repro.analysis.reporting import format_table
from repro.core.trace import PHASES
from repro.experiments.figures import fig3_cstf_breakdown

from conftest import run_once


def test_fig3_cstf_breakdown(benchmark, emit):
    results = run_once(benchmark, fig3_cstf_breakdown, rank=32)

    rows = [
        [b.label] + [f"{100.0 * b.fractions[p]:5.1f}%" for p in PHASES]
        for b in results
    ]
    emit(
        format_table(
            ["tensor"] + list(PHASES),
            rows,
            title="Figure 3: cSTF breakdown on Flickr / Delicious / NELL1 (CPU, ADMM, R=32)",
        )
    )

    assert [b.label for b in results] == ["flickr", "delicious", "nell1"]
    for b in results:
        assert b.dominant == "UPDATE", b.label
        assert b.fractions["UPDATE"] > 0.5, b.label
        assert b.fractions["MTTKRP"] > 0.05, "MTTKRP must still be visible"
