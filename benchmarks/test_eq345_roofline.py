"""Equations 3–5 — the ADMM work/traffic/arithmetic-intensity analysis.

Paper values (Section 3.3): W = 19IR + 2IR² flops, Q = 22IR + R² words,
and I≫R arithmetic intensities of 0.29, 0.47 and 0.83 flop/byte for
R = 16, 32, 64 — all below every device's balance point, so ADMM is
bandwidth-bound (the motivation for full GPU offload).
"""

import pytest

from repro.analysis.reporting import format_table
from repro.analysis.roofline import admm_arithmetic_intensity, admm_flops, admm_words
from repro.experiments.figures import eq345_arithmetic_intensity
from repro.machine.spec import A100, H100, ICELAKE_XEON

from conftest import run_once

PAPER_AI = {16: 0.29, 32: 0.47, 64: 0.83}


def test_eq345_arithmetic_intensity(benchmark, emit):
    ai = run_once(benchmark, eq345_arithmetic_intensity)

    rows = []
    for rank, value in ai.items():
        rows.append(
            [
                f"R={rank}",
                f"{admm_flops(10**6, rank):.3e}",
                f"{admm_words(10**6, rank):.3e}",
                f"{value:.3f}",
                f"{PAPER_AI[rank]:.2f}",
            ]
        )
    emit(
        format_table(
            ["rank", "W (flops, I=1e6)", "Q (words, I=1e6)", "AI (flop/byte)", "paper"],
            rows,
            title="Equations 3-5: ADMM cost analysis",
        )
    )

    for rank, paper in PAPER_AI.items():
        assert ai[rank] == pytest.approx(paper, abs=0.01)
        # The finite-I value converges to the limit.
        assert admm_arithmetic_intensity(10**8, rank) == pytest.approx(ai[rank], rel=1e-2)

    # Bandwidth-bound on every device in Table 1.
    for spec in (A100, H100, ICELAKE_XEON):
        balance = spec.peak_flops / spec.mem_bandwidth
        assert max(ai.values()) < balance, spec.name
