"""Ablation — isolating the cache effect behind H100 > A100 (Section 5.3).

The paper attributes the H100's edge to its larger L1D+L2 at equal HBM
bandwidth. This ablation runs the H100 model with (a) its own caches,
(b) the A100's caches, and (c) no extra compute peak (A100 flops), showing
that cache capacity alone moves the gather-bound phases.
"""

from repro.analysis.reporting import format_table
from repro.core import cstf
from repro.core.config import CstfConfig
from repro.data.frostt import get_dataset
from repro.machine.spec import A100, H100

from conftest import run_once


def _run(device):
    stats = get_dataset("delicious").stats()
    res = cstf(
        stats,
        CstfConfig(rank=32, max_iters=1, update="cuadmm", device=device,
                   mttkrp_format="blco", compute_fit=False),
    )
    return res.timeline.seconds("MTTKRP"), res.per_iteration_seconds()


def _ablation():
    h100 = _run(H100)
    h100_small_cache = _run(H100.with_(name="H100-smallcache", cache_bytes=A100.cache_bytes))
    a100 = _run(A100)
    return {"H100": h100, "H100/A100-cache": h100_small_cache, "A100": a100}


def test_cache_sensitivity(benchmark, emit):
    results = run_once(benchmark, _ablation)

    emit(
        format_table(
            ["device", "MTTKRP s/iter", "total s/iter"],
            [[k, f"{v[0]:.4f}", f"{v[1]:.4f}"] for k, v in results.items()],
            title="Ablation: cache capacity at fixed bandwidth (Delicious, R=32)",
        )
    )

    # Shrinking the H100's caches to A100 size must slow the gather-bound
    # MTTKRP phase — the paper's stated mechanism.
    assert results["H100"][0] < results["H100/A100-cache"][0]
    # And the full H100 must beat the A100 end to end.
    assert results["H100"][1] < results["A100"][1]
