"""Figure 8 — MTTKRP speedup vs ADMM speedup per tensor, H100.

Same setup as Figure 7 on the H100. The inverse MTTKRP/ADMM relation and
the VAST outlier must persist, and the H100's larger caches should lift
the gather-bound MTTKRP speedups relative to the A100.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig7_8_kernel_speedups

from conftest import run_once


def test_fig8_kernel_speedups_h100(benchmark, emit):
    h100 = run_once(benchmark, fig7_8_kernel_speedups, device="h100", rank=32)
    a100 = fig7_8_kernel_speedups(device="a100", rank=32)

    table = [
        [r.dataset, f"{r.mttkrp_speedup:.2f}x", f"{r.admm_speedup:.2f}x"]
        for r in h100
    ]
    emit(
        format_table(
            ["tensor", "MTTKRP speedup", "ADMM speedup"],
            table,
            title="Figure 8: per-kernel GPU/CPU speedups (H100, R=32)",
        )
    )

    by_h = {r.dataset: r for r in h100}
    by_a = {r.dataset: r for r in a100}
    # The cache-sensitive gather kernels benefit from the H100's extra SRAM
    # on the large, thrash-prone tensors.
    for name in ("flickr", "delicious", "nell1", "amazon"):
        assert by_h[name].mttkrp_speedup >= by_a[name].mttkrp_speedup, name
        assert by_h[name].admm_speedup > 10.0, name
    # Short-mode relation and the VAST outlier persist.
    for name in ("nips", "uber", "chicago"):
        assert by_h[name].mttkrp_speedup > by_h[name].admm_speedup, name
    assert by_h["vast"].mttkrp_speedup < 1.0
