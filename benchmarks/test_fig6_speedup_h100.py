"""Figure 6 — end-to-end per-iteration speedup vs SPLATT, H100, R = 32.

Same setup as Figure 5 on the H100. Paper result: geometric mean 7.01×,
max 58.05×, consistently above the A100 despite equal DRAM bandwidth —
attributed to the H100's larger L1D+L2 (Section 5.3).
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig5_6_end_to_end_speedup

from conftest import run_once


def test_fig6_end_to_end_speedup_h100(benchmark, emit):
    h100 = run_once(benchmark, fig5_6_end_to_end_speedup, device="h100", rank=32)
    a100 = fig5_6_end_to_end_speedup(device="a100", rank=32)

    emit(
        format_table(
            ["tensor", "SPLATT (CPU) s/iter", "cSTF-GPU s/iter", "speedup"],
            h100.as_rows(),
            title="Figure 6: end-to-end speedup vs SPLATT (H100, R=32)   [paper: gmean 7.01x, max 58.05x]",
        )
    )
    emit(f"H100 gmean {h100.gmean:.2f}x vs A100 gmean {a100.gmean:.2f}x")

    assert h100.gmean > a100.gmean, "H100's larger caches must win (Section 5.3)"
    assert h100.min_speedup > 1.0
    # Per-tensor: the H100 should be at least as fast as the A100 everywhere.
    for name, h_sp, a_sp in zip(h100.labels, h100.speedups, a100.speedups):
        assert h_sp >= 0.98 * a_sp, name
    assert 2.0 < h100.gmean < 25.0, "same decade as the paper's 7.01x"
