"""Figure 1 — execution-time breakdown: dense vs sparse constrained TF.

Paper setup: PLANC with the ADMM update, R = 32; dense synthetic
400×200×100×50 tensor vs the Delicious sparse tensor, on the CPU.
Paper result: MTTKRP dominates DenseTF; the ADMM UPDATE dominates SparseTF.
"""

from repro.analysis.breakdown import breakdown_row
from repro.analysis.reporting import format_table
from repro.core.trace import PHASES
from repro.experiments.figures import fig1_dense_vs_sparse_breakdown

from conftest import run_once


def test_fig1_dense_vs_sparse_breakdown(benchmark, emit):
    results = run_once(benchmark, fig1_dense_vs_sparse_breakdown, rank=32)

    rows = []
    for b in results:
        rows.append(
            [b.label]
            + [f"{100.0 * b.fractions[p]:5.1f}%" for p in PHASES]
            + [b.dominant]
        )
    emit(
        format_table(
            ["config"] + list(PHASES) + ["dominant"],
            rows,
            title="Figure 1: constrained TF phase breakdown (CPU, ADMM, R=32)",
        )
    )

    dense, sparse = results
    assert dense.dominant == "MTTKRP", "dense TF must be MTTKRP-bound"
    assert dense.fractions["MTTKRP"] > 0.6
    assert sparse.dominant == "UPDATE", "sparse TF must be UPDATE-bound"
    assert sparse.fractions["UPDATE"] > 0.5
