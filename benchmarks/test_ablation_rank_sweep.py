"""Ablation — rank sweep R ∈ {16, 32, 64} (the paper's evaluated ranks).

Section 5.1 runs every experiment at ranks 16/32/64. This bench sweeps the
rank on the Delicious statistics and checks the analytic consequences: the
arithmetic intensity (Eq. 5) and therefore the end-to-end GPU advantage
grow with rank, and the per-iteration time scales superlinearly in R on
both devices.
"""

from repro.analysis.reporting import format_table
from repro.baselines.splatt import splatt_cstf
from repro.core import cstf
from repro.core.config import CstfConfig
from repro.data.frostt import get_dataset

from conftest import run_once

RANKS = (16, 32, 64)


def _sweep():
    stats = get_dataset("delicious").stats()
    out = []
    for rank in RANKS:
        gpu = cstf(
            stats,
            CstfConfig(rank=rank, max_iters=1, update="cuadmm", device="h100",
                       mttkrp_format="blco", compute_fit=False),
        )
        cpu = splatt_cstf(stats, rank=rank, max_iters=1)
        out.append((rank, cpu.per_iteration_seconds(), gpu.per_iteration_seconds()))
    return out


def test_rank_sweep_delicious(benchmark, emit):
    rows = run_once(benchmark, _sweep)

    emit(
        format_table(
            ["rank", "SPLATT s/iter", "cSTF-GPU s/iter", "speedup"],
            [[r, f"{c:.3f}", f"{g:.3f}", f"{c / g:.2f}x"] for r, c, g in rows],
            title="Ablation: rank sweep on Delicious (H100 vs CPU)",
        )
    )

    times_gpu = [g for _, _, g in rows]
    times_cpu = [c for _, c, _ in rows]
    # Per-iteration time grows with rank on both devices.
    assert times_gpu == sorted(times_gpu)
    assert times_cpu == sorted(times_cpu)
    # Doubling R at least doubles GPU time (traffic is ∝ R, flops ∝ R²).
    assert times_gpu[2] > 2.0 * times_gpu[0]
    # GPU wins at every rank.
    for r, c, g in rows:
        assert c > g, f"rank {r}"
