"""Robustness study — the headline conclusion vs the calibration constants.

Halves and doubles every calibrated (non-Table-1) constant on each device
side and re-evaluates the Figure 5 geometric mean. The paper's qualitative
conclusion (the GPU framework wins, decisively on the large tensors) must
survive every perturbation — otherwise the reproduction would merely be an
artifact of the calibration.
"""

from repro.analysis.reporting import format_table
from repro.experiments.sensitivity import sensitivity_study

from conftest import run_once

# A representative subset keeps the sweep quick (32 model evaluations).
DATASETS = ("uber", "enron", "delicious", "amazon")


def test_conclusions_robust_to_constants(benchmark, emit):
    rows = run_once(
        benchmark, sensitivity_study, rank=32, datasets=DATASETS,
        factors=(0.5, 2.0),
    )

    emit(
        format_table(
            ["constant", "×", "side", "Fig-5 gmean", "GPU wins", "large group wins"],
            [
                [r.field, r.factor, r.device, f"{r.gmean:.2f}x",
                 "yes" if r.gpu_wins_overall else "NO",
                 "yes" if r.large_group_wins else "NO"]
                for r in rows
            ],
            title="Sensitivity: Figure 5 gmean under ±2x constant perturbations",
        )
    )

    gmeans = [r.gmean for r in rows]
    emit(f"gmean range across perturbations: {min(gmeans):.2f}x - {max(gmeans):.2f}x")

    # The qualitative conclusions never flip.
    assert all(r.gpu_wins_overall for r in rows)
    assert all(r.large_group_wins for r in rows)
    # And the quantitative story stays in the same decade.
    assert min(gmeans) > 1.5
    assert max(gmeans) < 50.0
