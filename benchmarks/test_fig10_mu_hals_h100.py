"""Figure 10 — MU and HALS speedups over modified PLANC, H100.

Same setup as Figure 9 on the H100. Paper result: geometric means 8.89×
(MU) and 7.78× (HALS), above the A100's.
"""

from repro.analysis.reporting import format_table
from repro.experiments.figures import fig9_10_mu_hals_speedup

from conftest import run_once


def test_fig10_mu_hals_h100(benchmark, emit):
    h100 = run_once(benchmark, fig9_10_mu_hals_speedup, device="h100", rank=32)
    a100 = fig9_10_mu_hals_speedup(device="a100", rank=32)

    for method, paper_gmean in (("mu", 8.89), ("hals", 7.78)):
        series = h100[method]
        emit(
            format_table(
                ["tensor", "PLANC (CPU) s/iter", "cSTF-GPU s/iter", "speedup"],
                series.as_rows(),
                title=f"Figure 10 ({method.upper()}): GPU vs PLANC, H100, R=32   [paper gmean {paper_gmean}x]",
            )
        )

    for method in ("mu", "hals"):
        assert h100[method].gmean > a100[method].gmean, (
            f"{method}: H100 must beat A100 (paper: 8.89 vs 6.42, 7.78 vs 5.90)"
        )
        assert h100[method].gmean > 2.0
