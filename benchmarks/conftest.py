"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment driver (timed via pytest-benchmark), prints the
same rows/series the paper reports, and asserts the DESIGN.md §4 shape
targets. Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: Stash slot for the BENCH document shared between the fixture and the
#: session-finish hook, so ``--bench-json`` never recomputes a suite a
#: bench test already ran.
_BENCH_DOC_KEY = pytest.StashKey()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", default=None, metavar="PATH",
        help="write the Figure 4/5/7 BENCH document (see docs/OBSERVABILITY.md) "
             "after the benchmark session; gate it with 'repro diff'",
    )


@pytest.fixture(scope="session")
def bench_suite_doc(request):
    """The Figure 4/5/7 BENCH document, computed once per session."""
    from repro.obs.analysis.bench import run_bench_suite

    doc = request.config.stash.get(_BENCH_DOC_KEY, None)
    if doc is None:
        doc = run_bench_suite()
        request.config.stash[_BENCH_DOC_KEY] = doc
    return doc


def pytest_sessionfinish(session, exitstatus):
    target = session.config.getoption("--bench-json")
    if not target or exitstatus != 0:
        return
    doc = session.config.stash.get(_BENCH_DOC_KEY, None)
    if doc is None:
        from repro.obs.analysis.bench import run_bench_suite

        doc = run_bench_suite()
    Path(target).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                            encoding="utf-8")
    print(f"\nBENCH document written to {target}")


def run_once(benchmark, fn, *args, **kwargs):
    """Execute *fn* exactly once under pytest-benchmark timing.

    The experiment drivers are deterministic simulations; repeating them
    only re-times identical work, so a single round keeps the harness fast
    while still producing a wall-clock figure for the run.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so ``-s`` shows the paper tables."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _emit
