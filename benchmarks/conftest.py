"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment driver (timed via pytest-benchmark), prints the
same rows/series the paper reports, and asserts the DESIGN.md §4 shape
targets. Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute *fn* exactly once under pytest-benchmark timing.

    The experiment drivers are deterministic simulations; repeating them
    only re-times identical work, so a single round keeps the harness fast
    while still producing a wall-clock figure for the run.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def emit(capsys):
    """Print through pytest's capture so ``-s`` shows the paper tables."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _emit
