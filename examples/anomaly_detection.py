#!/usr/bin/env python
"""Network anomaly detection with nonnegative tensor factorization.

One of the paper's motivating applications (cybersecurity / anomaly
detection): model network flow logs as a (source, destination, hour) count
tensor, factorize with nonnegativity constraints so the components are
interpretable traffic patterns, and flag the hours whose observed traffic
deviates most from the low-rank reconstruction.

The synthetic scenario plants three periodic background patterns (office
hours, nightly backups, a chatty service pair) plus a burst of scanning
traffic from one host during two specific hours. The scan does not fit any
low-rank pattern, so its hours surface with the highest residuals.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro import SparseTensor, cstf

N_SRC, N_DST, N_HOURS = 60, 60, 72
SCAN_SRC = 7
SCAN_HOURS = (31, 32)


def build_traffic_tensor(seed: int = 3) -> SparseTensor:
    rng = np.random.default_rng(seed)
    counts = np.zeros((N_SRC, N_DST, N_HOURS))

    hours = np.arange(N_HOURS)
    office = np.maximum(np.sin((hours % 24 - 6) / 12 * np.pi), 0.0)  # 9-to-5 bump
    nightly = ((hours % 24) == 2).astype(float)                      # backup window

    # Pattern 1: workstations -> servers during office hours.
    workstations = rng.choice(N_SRC, 25, replace=False)
    servers = rng.choice(N_DST, 5, replace=False)
    for s in workstations:
        for d in servers:
            counts[s, d] += rng.poisson(4) * office

    # Pattern 2: backup clients -> one storage host at night.
    for s in rng.choice(N_SRC, 15, replace=False):
        counts[s, servers[0]] += rng.poisson(20) * nightly

    # Pattern 3: a constantly chatty service pair.
    counts[3, 9] += rng.poisson(8, size=N_HOURS)

    # The anomaly: one host scanning many destinations in two hours.
    for d in range(N_DST):
        for h in SCAN_HOURS:
            counts[SCAN_SRC, d, h] += rng.poisson(6)

    noise = rng.poisson(0.02, size=counts.shape)
    return SparseTensor.from_dense(counts + noise)


def hourly_residuals(tensor: SparseTensor, model) -> np.ndarray:
    """Sum of squared residuals per hour, over the stored nonzeros."""
    predicted = model.values_at(tensor.indices)
    residual_sq = (tensor.values - predicted) ** 2
    out = np.zeros(N_HOURS)
    np.add.at(out, tensor.indices[:, 2], residual_sq)
    return out


def main() -> None:
    tensor = build_traffic_tensor()
    print(f"traffic tensor: {tensor}")

    result = cstf(
        tensor, rank=3, update="cuadmm", device="a100", max_iters=40, tol=1e-6, seed=1
    )
    print(f"nonnegative CP fit: {result.fit:.3f} ({result.iterations} iterations)")

    residuals = hourly_residuals(tensor, result.kruskal)
    threshold = residuals.mean() + 3 * residuals.std()
    flagged = np.flatnonzero(residuals > threshold)

    print("\nper-hour anomaly score (top 5):")
    for h in np.argsort(residuals)[::-1][:5]:
        marker = " <-- planted scan" if h in SCAN_HOURS else ""
        print(f"  hour {h:3d}: {residuals[h]:10.1f}{marker}")

    print(f"\nflagged hours (>mean+3sd): {sorted(flagged.tolist())}")
    print(f"planted scan hours:         {sorted(SCAN_HOURS)}")
    hits = set(SCAN_HOURS) & set(flagged.tolist())
    print("detection:", "SUCCESS" if hits == set(SCAN_HOURS) else f"partial ({hits})")


if __name__ == "__main__":
    main()
