#!/usr/bin/env python
"""Systems tour: planning where and how to run a factorization.

Walks the paper's Section 7 future work as implemented here. For each
Table 2 tensor (at paper scale, through the analytic machine model):

1. structural diagnosis (`repro.analysis.dataset_report`),
2. device-memory residency check (`repro.machine.memory`),
3. the CPU/GPU/heterogeneous decision (`repro.scheduler`),
4. and, for the largest tensor, the multi-GPU scaling outlook
   (`repro.machine.multigpu`).

Run:  python examples/execution_planning.py
"""

from repro.analysis.dataset_report import analyze
from repro.data.frostt import FROSTT_TABLE2, get_dataset
from repro.machine.memory import footprint
from repro.machine.multigpu import MultiGpuModel
from repro.scheduler import plan_execution

RANK = 32


def main() -> None:
    print(f"{'tensor':10s} {'group':7s} {'bottleneck':10s} {'fits 80GB':9s} "
          f"{'plan':16s} {'s/iter':>9s} {'vs pure':>8s}")
    print("-" * 78)
    for ds in FROSTT_TABLE2:
        stats = ds.stats()
        report = analyze(stats, rank=RANK)
        fp = footprint(stats, RANK)
        plan = plan_execution(stats, rank=RANK)
        print(
            f"{ds.name:10s} {report.size_group():7s} "
            f"{'UPDATE' if report.update_bound() else 'MTTKRP':10s} "
            f"{'yes' if fp.resident else 'NO':9s} "
            f"{plan.strategy:16s} {plan.predicted_seconds:9.3f} "
            f"{plan.advantage():7.2f}x"
        )

    print("\nMulti-GPU outlook for Amazon (1.7B nonzeros, A100 + NVLink):")
    model = MultiGpuModel("a100")
    stats = get_dataset("amazon").stats()
    base = model.estimate(stats, RANK, 1).total
    for n in (1, 2, 4, 8):
        est = model.estimate(stats, RANK, n)
        print(f"  {n} GPU: {est.total:7.3f} s/iter  "
              f"(speedup {base / est.total:4.2f}x, "
              f"comm {est.communication_seconds * 1e3:6.1f} ms)")


if __name__ == "__main__":
    main()
