#!/usr/bin/env python
"""Quickstart: constrained sparse tensor factorization in a few lines.

Generates an exactly low-rank nonnegative sparse tensor, factorizes it with
the fully optimized cuADMM update on the simulated H100, and reports the
fit trajectory, the recovered factors' match with the planted ground truth,
and the paper-style per-phase breakdown of simulated device time.

Run:  python examples/quickstart.py
"""

from repro import cstf, factor_match_score, planted_sparse_cp, KruskalTensor
from repro.analysis.breakdown import phase_fractions
from repro.core.trace import PHASES


def main() -> None:
    # A 40x32x24 sparse tensor that really is rank 4 (so fit -> 1.0).
    tensor, planted = planted_sparse_cp(
        (40, 32, 24), rank=4, factor_sparsity=0.5, seed=42
    )
    print(f"input: {tensor}")

    result = cstf(
        tensor,
        rank=4,
        update="cuadmm",       # ADMM + operation fusion + pre-inversion
        device="h100",         # simulated NVIDIA H100 (Table 1)
        mttkrp_format="blco",  # the GPU sparse format (Nguyen et al.)
        max_iters=60,
        tol=1e-7,
        seed=0,
    )

    print(f"\nconverged: {result.converged} after {result.iterations} iterations")
    print(f"fit: {result.fits[0]:.4f} -> {result.fit:.4f}")
    fms = factor_match_score(result.kruskal, KruskalTensor(planted))
    print(f"factor match score vs planted truth: {fms:.4f}")

    print("\nsimulated H100 time per phase (Algorithm 1):")
    fractions = phase_fractions(result.timeline)
    for phase in PHASES:
        seconds = result.timeline.seconds(phase)
        print(f"  {phase:10s} {seconds * 1e3:8.3f} ms  ({100 * fractions[phase]:5.1f} %)")
    print(f"  per-iteration: {result.per_iteration_seconds() * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
