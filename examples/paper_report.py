#!/usr/bin/env python
"""Regenerate the paper's headline evaluation in one run.

Prints every table and figure of the evaluation section through the
analytic machine model at the paper's own dataset scales (Table 2): the
dense-vs-sparse breakdown (Fig 1), the cSTF breakdown (Fig 3), the cuADMM
optimization study (Fig 4), the end-to-end speedups on both GPUs (Figs
5/6), the per-kernel speedups (Figs 7/8), the MU/HALS study (Figs 9/10),
and the arithmetic-intensity analysis (Eqs 3-5).

Run:  python examples/paper_report.py        (~1 minute)
"""

from repro.analysis.reporting import format_table
from repro.core.trace import PHASES
from repro.experiments.figures import (
    eq345_arithmetic_intensity,
    fig1_dense_vs_sparse_breakdown,
    fig3_cstf_breakdown,
    fig4_cuadmm_optimizations,
    fig5_6_end_to_end_speedup,
    fig7_8_kernel_speedups,
    fig9_10_mu_hals_speedup,
    table2_datasets,
)


def section(title: str) -> None:
    print("\n" + "#" * 72)
    print(f"# {title}")
    print("#" * 72)


def main() -> None:
    section("Table 2 - datasets")
    rows = [
        [r["name"], " x ".join(f"{d:,}" for d in r["dims"]), f"{r['nnz']:,}", f"{r['density']:.1e}"]
        for r in table2_datasets()
    ]
    print(format_table(["tensor", "dims", "nnz", "density"], rows))

    section("Figure 1 - dense vs sparse constrained TF breakdown (CPU, ADMM)")
    rows = [
        [b.label] + [f"{100 * b.fractions[p]:.1f}%" for p in PHASES]
        for b in fig1_dense_vs_sparse_breakdown()
    ]
    print(format_table(["config"] + list(PHASES), rows))

    section("Figure 3 - cSTF breakdown, three largest tensors (CPU, ADMM)")
    rows = [
        [b.label] + [f"{100 * b.fractions[p]:.1f}%" for p in PHASES]
        for b in fig3_cstf_breakdown()
    ]
    print(format_table(["tensor"] + list(PHASES), rows))

    section("Figure 4 - cuADMM optimizations (H100, single ADMM iteration)")
    rows = [
        [r.dataset, r.mode, f"{r.rows:,}", f"{r.speedup_of:.2f}x", f"{r.speedup_pi:.2f}x",
         f"{r.speedup_both:.2f}x"]
        for r in fig4_cuadmm_optimizations(inner_iters=1)
    ]
    print(format_table(["tensor", "mode", "rows", "OF", "PI", "OF+PI"], rows))

    for device, fig, paper in (("a100", "Figure 5", "5.10x / max 41.59x"),
                               ("h100", "Figure 6", "7.01x / max 58.05x")):
        section(f"{fig} - end-to-end speedup vs SPLATT ({device.upper()}) [paper gmean {paper}]")
        series = fig5_6_end_to_end_speedup(device=device)
        print(format_table(["tensor", "CPU s/iter", "GPU s/iter", "speedup"], series.as_rows()))

    for device, fig in (("a100", "Figure 7"), ("h100", "Figure 8")):
        section(f"{fig} - MTTKRP vs ADMM kernel speedups ({device.upper()})")
        rows = [
            [r.dataset, f"{r.mttkrp_speedup:.2f}x", f"{r.admm_speedup:.2f}x"]
            for r in fig7_8_kernel_speedups(device=device)
        ]
        print(format_table(["tensor", "MTTKRP", "ADMM"], rows))

    for device, fig, paper in (("a100", "Figure 9", "MU 6.42x / HALS 5.90x"),
                               ("h100", "Figure 10", "MU 8.89x / HALS 7.78x")):
        section(f"{fig} - MU & HALS vs PLANC ({device.upper()}) [paper gmean {paper}]")
        for method, series in fig9_10_mu_hals_speedup(device=device).items():
            print(f"\n[{method.upper()}]")
            print(format_table(["tensor", "CPU s/iter", "GPU s/iter", "speedup"], series.as_rows()))

    section("Equations 3-5 - ADMM arithmetic intensity [paper: 0.29 / 0.47 / 0.83]")
    for rank, ai in eq345_arithmetic_intensity().items():
        print(f"  R={rank:<3d} AI = {ai:.3f} flop/byte")


if __name__ == "__main__":
    main()
