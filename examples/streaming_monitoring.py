#!/usr/bin/env python
"""Streaming factorization for live monitoring.

Extension demo: a (sensor, channel) measurement matrix arrives every tick;
:class:`repro.streaming.StreamingCstf` maintains a nonnegative CP model
incrementally. The underlying process drifts slowly, and midway through the
stream a regime change replaces one latent pattern — the per-slice fit dips
at the change point and recovers as the forgetting factor washes the old
regime out, all at a small fraction of the cost of refitting.

Run:  python examples/streaming_monitoring.py
"""

import numpy as np

from repro.streaming import StreamingCstf
from repro.tensor.coo import SparseTensor

SENSORS, CHANNELS, RANK, STEPS = 40, 30, 3, 120
CHANGE_POINT = 60


def main() -> None:
    rng = np.random.default_rng(9)
    factors = [rng.exponential(size=(SENSORS, RANK)), rng.exponential(size=(CHANNELS, RANK))]

    stream = StreamingCstf(
        (SENSORS, CHANNELS), rank=RANK, update="cuadmm", device="a100",
        forgetting=0.9, inner_iters=6, seed=3,
    )

    fits, costs = [], []
    for t in range(STEPS):
        if t == CHANGE_POINT:
            # Regime change: component 0 is replaced by a new pattern.
            factors[0][:, 0] = rng.exponential(size=SENSORS)
            factors[1][:, 0] = rng.exponential(size=CHANNELS)
        weights = np.abs(rng.normal(size=RANK)) + 0.1
        slab = np.einsum("ir,jr,r->ij", factors[0], factors[1], weights)
        step = stream.ingest(SparseTensor.from_dense(slab))
        fits.append(step.slice_fit)
        costs.append(step.seconds)

    def mean(xs):
        return float(np.mean(xs))

    print(f"steps ingested: {stream.steps_ingested}, model {stream.model()}")
    print(f"fit before change (steps 45-59):  {mean(fits[45:60]):.3f}")
    print(f"fit right after change (60-67):   {mean(fits[60:68]):.3f}   <- dip")
    print(f"fit after re-adaptation (105-119): {mean(fits[105:]):.3f}")
    print(f"mean simulated cost per step: {mean(costs) * 1e3:.3f} ms")

    dipped = mean(fits[60:68]) < mean(fits[45:60]) - 0.03
    recovered = mean(fits[105:]) > mean(fits[60:68])
    print("regime change detected and re-adapted:",
          "YES" if (dipped and recovered) else "NO")


if __name__ == "__main__":
    main()
