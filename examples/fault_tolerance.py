#!/usr/bin/env python
"""Fault tolerance: surviving bad numerics, crashes, and injected faults.

Three short acts over the resilience layer (docs/RESILIENCE.md):

1. A fault-injection campaign — NaNs and indefinite Gram matrices thrown
   at every phase of Algorithm 1 — that the default repair policy absorbs
   while logging every recovery action it takes.
2. The same campaign under ``resilience="off"``, showing the historical
   fail-fast behavior the layer replaces.
3. Checkpoint/resume: a run "killed" halfway continues bit-identically
   from its last atomic snapshot, including the injector's RNG state.

Run:  python examples/fault_tolerance.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import cstf, planted_sparse_cp
from repro.resilience import FaultInjector, FaultSpec


def fresh_injector() -> FaultInjector:
    """One fault campaign, exactly reproducible from its seed."""
    return FaultInjector(
        [
            FaultSpec("MTTKRP", kind="nan", probability=0.2),
            FaultSpec("GRAM", kind="indefinite", probability=0.15, magnitude=1e6),
            FaultSpec("UPDATE", kind="inf", probability=0.1),
        ],
        seed=0,
    )


def main() -> None:
    tensor, _ = planted_sparse_cp((30, 24, 18), rank=4, factor_sparsity=0.5, seed=7)
    print(f"input: {tensor}\n")

    # ------------------------------------------------------------------ #
    print("=== 1. fault campaign under the default (repair) policy ===")
    inj = fresh_injector()
    result = cstf(tensor, rank=4, max_iters=40, seed=0, fault_injector=inj)
    finite = all(np.isfinite(f).all() for f in result.kruskal.factors)
    print(f"faults injected : {inj.injected}")
    print(f"recovery actions: {result.recoveries}")
    print(f"best / final fit: {max(result.fits):.4f} / {result.fit:.4f}  "
          f"(factors finite: {finite})")
    print("event histogram :")
    counts: dict[str, int] = {}
    for event in result.events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    for kind, n in sorted(counts.items()):
        print(f"  {kind:<18} x{n}")

    # ------------------------------------------------------------------ #
    print("\n=== 2. the same campaign with resilience='off' ===")
    try:
        cstf(tensor, rank=4, max_iters=40, seed=0,
             fault_injector=fresh_injector(), resilience="off")
        print("survived (faults happened to miss every guard-free path)")
    except Exception as exc:  # LinAlgError/ValueError from raw numerics
        print(f"died as expected: {type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------ #
    print("\n=== 3. checkpoint, 'crash', resume — bit-identical ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "run.npz"

        # The reference: 20 clean iterations straight through.
        straight = cstf(tensor, rank=4, max_iters=20, seed=1, tol=0.0)

        # The "crashed" run: checkpoint every 5, die after 10 ...
        cstf(tensor, rank=4, max_iters=10, seed=1, tol=0.0,
             checkpoint_every=5, checkpoint_path=path)
        # ... and a new process resumes from the snapshot.
        resumed = cstf(tensor, rank=4, max_iters=20, seed=1, tol=0.0,
                       resume_from=path)

        identical = all(
            np.array_equal(a, b)
            for a, b in zip(straight.kruskal.factors, resumed.kruskal.factors)
        )
        print(f"resumed from iteration {resumed.start_iteration}, "
              f"ran to {resumed.iterations}")
        print(f"factors bit-identical to the uninterrupted run: {identical}")
        print(f"fit trajectories equal: {straight.fits == resumed.fits}")


if __name__ == "__main__":
    main()
