#!/usr/bin/env python
"""Perf lab: trace analysis, run diagnosis, and the regression gate.

Runs the same small problem twice — once with the cuADMM optimizations
(operation fusion + pre-inversion) and once without — then walks the
consumer side of the observability layer (docs/OBSERVABILITY.md):

1. the trace analyzer — phase attribution, kernel hotspots with their
   memory/compute-bound classification, and the critical path;
2. the paper's traffic claims — the fused auxiliary step moves ~2/3 the
   bytes of the unfused plan, measured across the two runs and modeled
   from either trace alone via the cost-model counterfactual;
3. the run doctor — a fault-injected stall produces ranked findings that
   name the offending spans and iterations;
4. the bench harness + baseline store — a BENCH document diffed against
   freshly blessed baselines, flat on a clean re-run and regressed when
   a metric is perturbed.

Run:  python examples/perf_lab.py
"""

import json
import tempfile
from pathlib import Path

from repro import cstf, planted_sparse_cp
from repro.obs import Telemetry
from repro.obs.analysis import (
    BaselineStore,
    analyze_trace,
    aux_traffic_ratio,
    bench_to_baselines,
    diagnose,
    diff_against_store,
    fusion_report,
    preinversion_report,
    run_bench_suite,
)
from repro.resilience.faults import FaultInjector, FaultSpec


def traced_run(tensor, fuse: bool, preinvert: bool):
    tel = Telemetry()
    result = cstf(
        tensor,
        rank=4,
        update="admm",
        device="a100",
        mttkrp_format="blco",
        max_iters=4,
        seed=0,
        telemetry=tel,
        update_params={"inner_iters": 5, "fuse_ops": fuse, "preinvert": preinvert},
    )
    tel.close()
    return result.telemetry


def main() -> None:
    tensor, _ = planted_sparse_cp((30, 24, 18), rank=4, factor_sparsity=0.5, seed=11)
    print(f"input: {tensor}")

    fused = traced_run(tensor, fuse=True, preinvert=True)
    unfused = traced_run(tensor, fuse=False, preinvert=False)

    print("\n-- 1. trace analyzer (fused run) --")
    ta = analyze_trace(fused)
    for row in ta.phase_table()[:4]:
        print(f"   {row['phase']:<10} {row['seconds'] * 1e3:8.3f} ms "
              f"({100 * row['share']:5.1f}%)")
    print("   top kernels:")
    for stat in ta.kernel_hotspots(3):
        bound = "memory" if ta.memory_bound(stat) else "compute"
        print(f"     {stat.name:<18} {stat.calls:>4} calls  "
              f"{stat.seconds * 1e3:8.3f} ms  {bound}-bound")
    path = ta.critical_path()
    print(f"   critical path: {' > '.join(n.span.name for n in path)}")

    print("\n-- 2. the paper's traffic claims --")
    measured = aux_traffic_ratio(fused, unfused)
    modeled = fusion_report(fused).ratio
    formation = aux_traffic_ratio(fused, unfused, formation_only=True)
    print(f"   aux formation, fused/unfused bytes: {formation:.4f} (claim ~2/3)")
    print(f"   full aux step, measured two-run ratio: {measured:.4f}")
    print(f"   full aux step, modeled from one trace: {modeled:.4f}")
    pre = preinversion_report(fused)
    print(f"   pre-inversion: {pre.solves_per_update:.1f} triangular solves per "
          f"update call, {pre.apply_inverse_gemms} apply-inverse GEMMs")

    print("\n-- 3. run doctor on an injected ADMM stall --")
    injector = FaultInjector(
        [FaultSpec(phase="MTTKRP", kind="nan", probability=1.0, count=1)], seed=0
    )
    stalled = cstf(
        tensor, rank=4, update="cuadmm", device="a100", mttkrp_format="blco",
        max_iters=3, seed=0, telemetry=True, resilience="warn",
        fault_injector=injector, update_params={"inner_iters": 5},
    )
    for f in diagnose(stalled.telemetry)[:3]:
        print(f"   [{f.severity}] {f.code}: {f.summary[:80]}...")

    print("\n-- 4. bench harness + regression gate --")
    doc = run_bench_suite(datasets=("nips",), fig4_names=("nips",))
    workdir = Path(tempfile.mkdtemp(prefix="perf_lab_"))
    store = BaselineStore(workdir / "baselines")
    for base in bench_to_baselines(doc):
        store.save(base)
    report = diff_against_store(doc["groups"], store)
    print(f"   clean re-run vs blessed baselines: {report.counts()} "
          f"(exit {report.exit_code})")
    perturbed = json.loads(json.dumps(doc))
    name = next(iter(perturbed["groups"][1]["metrics"]))
    perturbed["groups"][1]["metrics"][name] *= 0.5
    report = diff_against_store(perturbed["groups"], store)
    print(f"   after halving {name}: {report.counts()} (exit {report.exit_code})")
    print("\nperf lab complete")


if __name__ == "__main__":
    main()
