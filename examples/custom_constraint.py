#!/usr/bin/env python
"""Custom constraints through the proximity-operator plug-in point.

The paper picks AO-ADMM precisely because "ADMM supports various types of
constraints, such as sparsity (L1 norm) and smoothness" (Section 3.2) —
the constraint enters only through the proximity operator of line 7.

This example factorizes one tensor under four different constraints using
the *same* cuADMM machinery:

1. plain nonnegativity,
2. nonnegativity + L1 (sparse factors),
3. box constraints (bounded activations),
4. a hand-rolled custom operator registered on the spot (nonnegative with
   a per-column cap — e.g. budget-limited topic intensities).

Run:  python examples/custom_constraint.py
"""

import numpy as np

from repro import cstf, planted_sparse_cp
from repro.linalg.proximal import ProximalOperator
from repro.updates.admm import AdmmUpdate


def capped_nonneg(cap: float) -> ProximalOperator:
    """Projection onto { 0 <= x <= cap } — a custom constraint in 3 lines."""

    def fn(x, rho):
        return np.clip(x, 0.0, cap)

    return ProximalOperator(name=f"capped_nonneg({cap})", fn=fn)


def sparsity(factors) -> float:
    return float(np.mean([np.mean(np.asarray(f) <= 1e-10) for f in factors]))


def main() -> None:
    tensor, _ = planted_sparse_cp((35, 28, 21), rank=4, factor_sparsity=0.6, seed=8)
    # Rescale values into O(1) so bound-type constraints are meaningful for
    # this data (a bounded factor model cannot represent huge entries).
    tensor = tensor.scale_values(1.0 / float(tensor.values.max()))
    print(f"input: {tensor}\n")

    configs = [
        ("nonneg", AdmmUpdate(constraint="nonneg", fuse_ops=True, preinvert=True)),
        (
            "nonneg + L1",
            AdmmUpdate(
                constraint="nonneg_l1", constraint_params={"alpha": 0.01},
                fuse_ops=True, preinvert=True,
            ),
        ),
        (
            "box [0, 1]",
            AdmmUpdate(
                constraint="box", constraint_params={"lo": 0.0, "hi": 1.0},
                fuse_ops=True, preinvert=True,
            ),
        ),
        (
            "custom cap",
            AdmmUpdate(constraint=capped_nonneg(0.8), fuse_ops=True, preinvert=True),
        ),
    ]

    print(f"{'constraint':14s} {'fit':>7s} {'factor sparsity':>16s} {'max entry':>10s}")
    for label, update in configs:
        result = cstf(tensor, rank=4, update=update, max_iters=40, seed=2)
        max_entry = max(float(f.max()) for f in result.kruskal.factors)
        print(
            f"{label:14s} {result.fit:7.3f} {100 * sparsity(result.kruskal.factors):15.1f}% "
            f"{max_entry:10.3f}"
        )

    print("\nNote how L1 raises factor sparsity and the box/cap constraints")
    print("bound the entries — all through the same fused cuADMM kernels.")


if __name__ == "__main__":
    main()
