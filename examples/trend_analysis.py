#!/usr/bin/env python
"""Trend analysis: extracting temporal topics from (user, item, week) data.

Another application from the paper's introduction: interpretable trend
extraction from multi-way interaction data. We plant three user cohorts
with distinct item tastes and distinct temporal profiles (rising, fading,
seasonal), factorize the count tensor under nonnegativity with three
different update methods (cuADMM, MU, HALS), and show that each recovers
the same interpretable temporal profiles.

Run:  python examples/trend_analysis.py
"""

import numpy as np

from repro import SparseTensor, cstf

N_USERS, N_ITEMS, N_WEEKS = 80, 50, 26


def build_interactions(seed: int = 5):
    rng = np.random.default_rng(seed)
    weeks = np.arange(N_WEEKS)
    profiles = {
        "rising": weeks / N_WEEKS,
        "fading": 1.0 - weeks / N_WEEKS,
        "seasonal": 0.5 * (1 + np.sin(weeks / N_WEEKS * 4 * np.pi)),
    }

    counts = np.zeros((N_USERS, N_ITEMS, N_WEEKS))
    cohorts = np.array_split(rng.permutation(N_USERS), 3)
    item_sets = np.array_split(rng.permutation(N_ITEMS), 3)
    for (name, profile), users, items in zip(profiles.items(), cohorts, item_sets):
        for u in users:
            for i in rng.choice(items, size=max(2, len(items) // 3), replace=False):
                counts[u, i] += rng.poisson(3) * profile
    counts += rng.poisson(0.01, size=counts.shape)
    return SparseTensor.from_dense(counts), profiles


def correlate(profile: np.ndarray, component: np.ndarray) -> float:
    p = profile - profile.mean()
    c = component - component.mean()
    denom = np.linalg.norm(p) * np.linalg.norm(c)
    return float(p @ c / denom) if denom > 0 else 0.0


def main() -> None:
    tensor, profiles = build_interactions()
    print(f"interaction tensor: {tensor}\n")

    for method in ("cuadmm", "mu", "hals"):
        iters = 150 if method == "mu" else 50  # MU converges more slowly
        result = cstf(
            tensor, rank=3, update=method, device="a100", max_iters=iters, seed=2
        )
        time_factors = result.kruskal.factors[2]  # the week-mode factor

        print(f"== {method}: fit {result.fit:.3f}, "
              f"{result.per_iteration_seconds() * 1e3:.2f} ms/iter simulated ==")
        for name, profile in profiles.items():
            best = max(
                (abs(correlate(profile, time_factors[:, r])) for r in range(3)),
            )
            status = "recovered" if best > 0.8 else "weak"
            print(f"  {name:9s} trend: best |corr| = {best:.3f}  [{status}]")
        print()


if __name__ == "__main__":
    main()
