#!/usr/bin/env python
"""Telemetry tour: spans, metrics, JSONL, and a Perfetto-ready trace.

Factorizes a small planted tensor with telemetry on, then walks the three
outputs of the observability layer (docs/OBSERVABILITY.md):

1. the span tree — host wall time with inclusive simulated-device
   attribution, phase by phase;
2. the metrics registry — convergence telemetry (fit trajectory, ADMM
   inner-iteration counts, per-format MTTKRP call counters) as
   min/max/mean/percentile summaries;
3. the exporters — a streaming JSONL audit trail, validated against the
   published schema, converted to a Chrome trace for ui.perfetto.dev.

Run:  python examples/telemetry_tour.py
"""

import tempfile
from pathlib import Path

from repro import cstf, planted_sparse_cp
from repro.core.trace import PHASES
from repro.obs import (
    Telemetry,
    validate_jsonl,
    write_telemetry_chrome_trace,
)


def main() -> None:
    tensor, _ = planted_sparse_cp((30, 24, 18), rank=4, factor_sparsity=0.5, seed=11)
    print(f"input: {tensor}")

    workdir = Path(tempfile.mkdtemp(prefix="telemetry_tour_"))
    jsonl = workdir / "run.jsonl"

    # One session: in-memory record + streaming JSONL sink.
    tel = Telemetry(jsonl_path=jsonl)
    result = cstf(
        tensor,
        rank=4,
        update="cuadmm",
        device="a100",
        mttkrp_format="blco",
        max_iters=8,
        seed=0,
        telemetry=tel,
    )
    tel.close()  # writes the final summary line and releases the sink
    rec = result.telemetry

    print("\n-- 1. span tree (host seconds, inclusive simulated seconds) --")
    for line in rec.span_tree_lines()[:14]:
        print(line)
    print(f"   ... {len(rec.spans)} spans total")

    print("\n-- 2. simulated-device attribution per phase --")
    print(f"{'phase':<10} {'record':>12} {'timeline':>12}")
    for phase in PHASES:
        print(f"{phase:<10} {rec.phase_seconds(phase):>12.3e} "
              f"{result.timeline.seconds(phase):>12.3e}")

    print("\n-- 3. metrics registry --")
    summary = rec.metrics_summary
    print("counters:", {k: int(v) for k, v in sorted(summary["counters"].items())})
    inner = summary["histograms"]["admm.inner_iters"]
    print(f"admm.inner_iters: count={inner['count']} mean={inner['mean']:.1f} "
          f"p99={inner['p99']:.0f}")
    fit = summary["histograms"]["cstf.fit"]
    print(f"cstf.fit: min={fit['min']:.4f} max={fit['max']:.4f} "
          f"(final {summary['gauges']['cstf.last_fit']:.4f})")

    print("\n-- 4. exporters --")
    errors = validate_jsonl(jsonl)
    n_lines = sum(1 for line in open(jsonl, encoding="utf-8") if line.strip())
    print(f"JSONL: {jsonl} ({n_lines} lines, "
          f"{'schema OK' if not errors else errors[:3]})")
    trace_path = workdir / "trace.json"
    trace = write_telemetry_chrome_trace(jsonl, trace_path)
    print(f"chrome trace: {trace_path} ({len(trace['traceEvents'])} events) — "
          f"open in ui.perfetto.dev")
    print("\ntelemetry tour complete")


if __name__ == "__main__":
    main()
